#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace diesel {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
std::mutex g_write_mutex;

// Shared_ptr behind a mutex so a concurrent SetLogTimeSource/SetLogSink
// cannot destroy a callable mid-invocation.
std::mutex g_hooks_mutex;
std::shared_ptr<std::function<Nanos()>> g_time_source;
std::shared_ptr<std::function<void(const std::string&)>> g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

bool ParseLevel(const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  if (text[0] >= '0' && text[0] <= '3' && text[1] == '\0') {
    *out = text[0] - '0';
    return true;
  }
  struct { const char* name; LogLevel level; } names[] = {
      {"debug", LogLevel::kDebug}, {"info", LogLevel::kInfo},
      {"warn", LogLevel::kWarn},   {"error", LogLevel::kError}};
  for (const auto& [name, level] : names) {
    const char* a = text;
    const char* b = name;
    while (*a && *b && (std::tolower(static_cast<unsigned char>(*a)) == *b)) {
      ++a; ++b;
    }
    if (*a == '\0' && *b == '\0') {
      *out = static_cast<int>(level);
      return true;
    }
  }
  return false;
}

void EnsureEnvApplied() {
  std::call_once(g_env_once, [] { InitLogLevelFromEnv(); });
}

}  // namespace

void SetLogLevel(LogLevel level) {
  EnsureEnvApplied();  // an explicit Set must win over a later lazy init
  g_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  EnsureEnvApplied();
  return static_cast<LogLevel>(g_level.load());
}

bool InitLogLevelFromEnv() {
  int level;
  if (!ParseLevel(std::getenv("DIESEL_LOG_LEVEL"), &level)) return false;
  g_level.store(level);
  return true;
}

void SetLogTimeSource(std::function<Nanos()> source) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_time_source = source ? std::make_shared<std::function<Nanos()>>(
                               std::move(source))
                         : nullptr;
}

void SetLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_sink = sink ? std::make_shared<std::function<void(const std::string&)>>(
                      std::move(sink))
                : nullptr;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(false), level_(level) {
  EnsureEnvApplied();
  enabled_ =
      static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
  if (!enabled_) return;
  stream_ << "[" << LevelName(level);
  std::shared_ptr<std::function<Nanos()>> source;
  {
    std::lock_guard<std::mutex> lock(g_hooks_mutex);
    source = g_time_source;
  }
  if (source != nullptr) stream_ << " @" << (*source)() << "ns";
  stream_ << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::string msg = stream_.str();
  std::shared_ptr<std::function<void(const std::string&)>> sink;
  {
    std::lock_guard<std::mutex> lock(g_hooks_mutex);
    sink = g_sink;
  }
  if (sink != nullptr) {
    (*sink)(msg);
    return;
  }
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fputs(msg.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace diesel
