// Virtual time.
//
// Every logical worker (a simulated client thread, server executor, I/O
// worker) owns a VirtualClock measured in nanoseconds. Devices advance a
// worker's clock when the worker uses them; workers never advance each
// other's clocks directly. Wall-clock time never enters the simulation, so
// every experiment is deterministic and independent of host load.
#pragma once

#include <algorithm>
#include <cassert>

#include "common/units.h"

namespace diesel::sim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(Nanos start) : now_(start) {}

  Nanos now() const { return now_; }

  /// Jump forward to `t` (no-op if `t` is in the past: a device that was
  /// free earlier than the worker arrived completes at the worker's now).
  void AdvanceTo(Nanos t) { now_ = std::max(now_, t); }

  /// Spend `d` of local compute/think time.
  void Advance(Nanos d) { now_ += d; }

  void Reset(Nanos t = 0) { now_ = t; }

 private:
  Nanos now_ = 0;
};

}  // namespace diesel::sim
