// Queueing device model.
//
// A Device is a resource with `channels` parallel servers, a fixed per-op
// latency, and a per-channel byte bandwidth. Serving a request picks the
// earliest-free channel:
//
//   start = max(request_arrival, channel_free_time)
//   end   = start + latency + bytes / bandwidth
//
// and the worker's virtual clock jumps to `end`. When arrival rate exceeds
// capacity, channel free-times run ahead of arrivals and queueing delay
// emerges — this is what produces the saturation knees in the paper's
// scaling figures (e.g. Fig. 10a metadata QPS flattening).
//
// Thread-safe: Serve() is mutex-guarded; devices are shared by many logical
// workers running on real threads.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"

namespace diesel::sim {

struct DeviceSpec {
  std::string name;
  uint32_t channels = 1;
  Nanos latency = 0;             // fixed cost per operation
  double bytes_per_sec = 0.0;    // per-channel bandwidth; 0 = infinite
};

class Device {
 public:
  explicit Device(DeviceSpec spec);

  /// Service time for `bytes` excluding queueing (latency + transfer).
  Nanos ServiceTime(uint64_t bytes) const;

  /// Serve a request arriving at `now`; returns completion time.
  Nanos Serve(Nanos now, uint64_t bytes);

  /// Serve with an extra fixed cost (e.g. op-specific CPU work).
  Nanos Serve(Nanos now, uint64_t bytes, Nanos extra);

  const DeviceSpec& spec() const { return spec_; }

  /// Total operations served (monotonic; for stats/tests).
  uint64_t ops_served() const;
  /// Total bytes moved.
  uint64_t bytes_served() const;
  /// Total busy time summed over channels.
  Nanos busy_time() const;

  /// Forget all queue state (start of a new experiment repetition).
  void Reset();

 private:
  struct Interval {
    Nanos start;
    Nanos end;
  };
  struct Channel {
    std::vector<Interval> busy;  // sorted by start, non-overlapping
  };

  static constexpr size_t kMaxIntervals = 4096;

  /// Earliest start >= now with an idle gap of length `dur` on `ch`.
  static Nanos EarliestFit(const Channel& ch, Nanos now, Nanos dur);
  static void Insert(Channel& ch, Nanos start, Nanos end);

  DeviceSpec spec_;
  mutable std::mutex mutex_;
  std::vector<Channel> channels_;
  uint64_t ops_ = 0;
  uint64_t bytes_ = 0;
  Nanos busy_ = 0;
};

}  // namespace diesel::sim
