// Queueing device model.
//
// A Device is a resource with `channels` parallel servers, a fixed per-op
// latency, and a per-channel byte bandwidth. Serving a request picks the
// earliest-free channel:
//
//   start = max(request_arrival, channel_free_time)
//   end   = start + latency + bytes / bandwidth
//
// and the worker's virtual clock jumps to `end`. When arrival rate exceeds
// capacity, channel free-times run ahead of arrivals and queueing delay
// emerges — this is what produces the saturation knees in the paper's
// scaling figures (e.g. Fig. 10a metadata QPS flattening).
//
// Resource telemetry: BindMetrics(node) attaches the device to the metrics
// registry under the systematic `node=` label convention. A bound device
// reports per-request queue wait and service time into
// sim.device.queue_wait_ns / sim.device.service_ns histograms plus
// busy-time/ops/bytes counters and busy-window gauges, from which
// obs::ClusterView derives utilization in [0,1] and per-node skew.
// Unbound devices (the default) pay nothing.
//
// Thread-safe: Serve() is mutex-guarded; devices are shared by many logical
// workers running on real threads.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"

namespace diesel::obs {
class Counter;
class Gauge;
class Histo;
}  // namespace diesel::obs

namespace diesel::sim {

struct DeviceSpec {
  std::string name;
  uint32_t channels = 1;
  Nanos latency = 0;             // fixed cost per operation
  double bytes_per_sec = 0.0;    // per-channel bandwidth; 0 = infinite
};

/// Per-request accounting Serve() can report back to the caller: where the
/// request actually ran and how long it queued behind earlier work.
struct ServeStats {
  Nanos start = 0;       // when a channel began serving the request
  Nanos done = 0;        // completion time (== Serve's return value)
  Nanos queue_wait = 0;  // start - arrival; >= 0 by construction
  Nanos service = 0;     // latency + transfer + extra
};

class Device {
 public:
  explicit Device(DeviceSpec spec);

  /// Service time for `bytes` excluding queueing (latency + transfer).
  Nanos ServiceTime(uint64_t bytes) const;

  /// Serve a request arriving at `now`; returns completion time.
  Nanos Serve(Nanos now, uint64_t bytes);

  /// Serve with an extra fixed cost (e.g. op-specific CPU work).
  Nanos Serve(Nanos now, uint64_t bytes, Nanos extra);

  /// Serve and report per-request queueing accounting (`out` may be null).
  Nanos Serve(Nanos now, uint64_t bytes, Nanos extra, ServeStats* out);

  const DeviceSpec& spec() const { return spec_; }

  /// Publish this device's telemetry into the process-wide metrics registry
  /// as sim.device.*{device=<spec.name>,node=<node>}. Idempotent; binding
  /// again with a different node label re-points the handles. The `node`
  /// label follows the cluster convention "n<id>" so obs::ClusterView can
  /// roll devices up per node.
  void BindMetrics(const std::string& node);
  bool metrics_bound() const;

  /// Total operations served (monotonic; for stats/tests).
  uint64_t ops_served() const;
  /// Total bytes moved.
  uint64_t bytes_served() const;
  /// Total busy time summed over channels.
  Nanos busy_time() const;
  /// Times Insert() hit the kMaxIntervals cap and conservatively collapsed
  /// the oldest idle gap into busy time (skews backfill accounting; exported
  /// as sim.device.intervals_collapsed when bound).
  uint64_t intervals_collapsed() const;

  /// Forget all queue state (start of a new experiment repetition).
  void Reset();

 private:
  struct Interval {
    Nanos start;
    Nanos end;
  };
  struct Channel {
    std::vector<Interval> busy;  // sorted by start, non-overlapping
  };

  /// Registry handles, resolved once by BindMetrics so the per-request cost
  /// is two histogram observes and a few relaxed counter increments.
  struct Metrics {
    obs::Histo* queue_wait_ns;
    obs::Histo* service_ns;
    obs::Counter* busy_ns;
    obs::Counter* ops;
    obs::Counter* bytes;
    obs::Counter* intervals_collapsed;
    obs::Gauge* channels;
    obs::Gauge* busy_start_ns;  // earliest service start observed
    obs::Gauge* busy_end_ns;    // latest completion observed
  };

  static constexpr size_t kMaxIntervals = 4096;

  /// Earliest start >= now with an idle gap of length `dur` on `ch`.
  static Nanos EarliestFit(const Channel& ch, Nanos now, Nanos dur);
  size_t Insert(Channel& ch, Nanos start, Nanos end);

  DeviceSpec spec_;
  mutable std::mutex mutex_;
  std::vector<Channel> channels_;
  uint64_t ops_ = 0;
  uint64_t bytes_ = 0;
  Nanos busy_ = 0;
  uint64_t intervals_collapsed_ = 0;
  bool seen_start_ = false;
  Nanos first_start_ = 0;
  Nanos last_end_ = 0;
  Metrics metrics_{};
  bool bound_ = false;
};

}  // namespace diesel::sim
