#include "sim/device.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace diesel::sim {

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {
  assert(spec_.channels > 0);
  channels_.resize(spec_.channels);
}

Nanos Device::ServiceTime(uint64_t bytes) const {
  Nanos transfer = 0;
  if (spec_.bytes_per_sec > 0.0 && bytes > 0) {
    transfer = static_cast<Nanos>(
        std::llround(static_cast<double>(bytes) / spec_.bytes_per_sec * 1e9));
  }
  return spec_.latency + transfer;
}

Nanos Device::Serve(Nanos now, uint64_t bytes) {
  return Serve(now, bytes, 0, nullptr);
}

Nanos Device::Serve(Nanos now, uint64_t bytes, Nanos extra) {
  return Serve(now, bytes, extra, nullptr);
}

void Device::BindMetrics(const std::string& node) {
  obs::MetricsRegistry& reg = obs::Metrics();
  obs::Labels labels{{"device", spec_.name}, {"node", node}};
  Metrics m;
  m.queue_wait_ns = &reg.GetHistogram("sim.device.queue_wait_ns", labels);
  m.service_ns = &reg.GetHistogram("sim.device.service_ns", labels);
  m.busy_ns = &reg.GetCounter("sim.device.busy_ns", labels);
  m.ops = &reg.GetCounter("sim.device.ops", labels);
  m.bytes = &reg.GetCounter("sim.device.bytes", labels);
  m.intervals_collapsed =
      &reg.GetCounter("sim.device.intervals_collapsed", labels);
  m.channels = &reg.GetGauge("sim.device.channels", labels);
  m.busy_start_ns = &reg.GetGauge("sim.device.busy_start_ns", labels);
  m.busy_end_ns = &reg.GetGauge("sim.device.busy_end_ns", labels);
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = m;
  metrics_.channels->Set(static_cast<double>(spec_.channels));
  bound_ = true;
}

bool Device::metrics_bound() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bound_;
}

Nanos Device::Serve(Nanos now, uint64_t bytes, Nanos extra, ServeStats* out) {
  Nanos service = ServiceTime(bytes) + extra;
  if (service == 0) service = 1;  // occupy a measurable instant
  std::lock_guard<std::mutex> lock(mutex_);

  // Requests may arrive out of virtual-time order (a driver executes one
  // worker's whole multi-leg operation before another worker's earlier
  // request). Channels therefore keep busy *intervals* and new work backfills
  // the earliest idle gap at or after `now`, instead of queueing behind
  // later-scheduled work.
  Nanos best_start = ~Nanos{0};
  size_t best_channel = 0;
  for (size_t c = 0; c < channels_.size(); ++c) {
    Nanos start = EarliestFit(channels_[c], now, service);
    if (start < best_start) {
      best_start = start;
      best_channel = c;
    }
  }
  size_t collapsed =
      Insert(channels_[best_channel], best_start, best_start + service);
  intervals_collapsed_ += collapsed;

  ++ops_;
  bytes_ += bytes;
  busy_ += service;
  Nanos done = best_start + service;
  if (!seen_start_ || best_start < first_start_) first_start_ = best_start;
  seen_start_ = true;
  last_end_ = std::max(last_end_, done);
  if (out != nullptr) {
    out->start = best_start;
    out->done = done;
    out->queue_wait = best_start - now;
    out->service = service;
  }
  if (bound_) {
    metrics_.queue_wait_ns->Observe(static_cast<double>(best_start - now));
    metrics_.service_ns->Observe(static_cast<double>(service));
    metrics_.busy_ns->Inc(static_cast<uint64_t>(service));
    metrics_.ops->Inc();
    metrics_.bytes->Inc(bytes);
    if (collapsed > 0) metrics_.intervals_collapsed->Inc(collapsed);
    metrics_.busy_start_ns->Set(static_cast<double>(first_start_));
    metrics_.busy_end_ns->Set(static_cast<double>(last_end_));
  }
  return done;
}

Nanos Device::EarliestFit(const Channel& ch, Nanos now, Nanos dur) {
  Nanos candidate = now;
  for (const Interval& iv : ch.busy) {  // sorted by start
    if (iv.start >= candidate && iv.start - candidate >= dur) break;
    candidate = std::max(candidate, iv.end);
  }
  return candidate;
}

size_t Device::Insert(Channel& ch, Nanos start, Nanos end) {
  auto it = std::lower_bound(
      ch.busy.begin(), ch.busy.end(), start,
      [](const Interval& iv, Nanos s) { return iv.start < s; });
  it = ch.busy.insert(it, {start, end});
  // Merge with touching neighbours to keep the list short.
  if (it != ch.busy.begin()) {
    auto prev = it - 1;
    if (prev->end >= it->start) {
      prev->end = std::max(prev->end, it->end);
      it = ch.busy.erase(it);
      --it;
    }
  }
  auto next = it + 1;
  if (next != ch.busy.end() && it->end >= next->start) {
    it->end = std::max(it->end, next->end);
    ch.busy.erase(next);
  }
  // Bound memory: collapse the oldest gap when the list grows long. This is
  // conservative (pretends the gap was busy) but only affects requests that
  // arrive more than kMaxIntervals ops in the past. Reported so skewed
  // backfill accounting is visible instead of silent.
  if (ch.busy.size() > kMaxIntervals) {
    ch.busy[1].start = ch.busy[0].start;
    ch.busy.erase(ch.busy.begin());
    return 1;
  }
  return 0;
}

uint64_t Device::ops_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

uint64_t Device::bytes_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

Nanos Device::busy_time() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_;
}

uint64_t Device::intervals_collapsed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return intervals_collapsed_;
}

void Device::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& ch : channels_) ch.busy.clear();
  ops_ = 0;
  bytes_ = 0;
  busy_ = 0;
  intervals_collapsed_ = 0;
  seen_start_ = false;
  first_start_ = 0;
  last_end_ = 0;
}

}  // namespace diesel::sim
