// Calibration constants for the simulated cluster.
//
// Derived from the paper's Table 2 (SSD cluster block-size sweep), Table 4
// (hardware), and §6 quotes (Lustre MDS ~68k QPS, Redis tier ~0.97M QPS,
// Lustre 4KB reads ~40k files/s, etc.). These reproduce the *shapes* of the
// evaluation, not the authors' absolute testbed numbers.
#pragma once

#include "common/units.h"
#include "sim/device.h"

namespace diesel::sim {

// ---------------------------------------------------------------------------
// Network (100 Gbps InfiniBand, Table 4)
// ---------------------------------------------------------------------------

/// One-way wire latency between any two nodes.
constexpr Nanos kWireLatency = Micros(2);

/// Node NIC: 100 Gbps ~ 12.5 GB/s, multi-queue (8 hardware queues).
inline DeviceSpec NicSpec(std::string name) {
  return {.name = std::move(name), .channels = 8, .latency = Micros(1),
          .bytes_per_sec = 12.5e9 / 8};
}

/// Per-RPC software overhead on each endpoint (Thrift serialize + syscall).
constexpr Nanos kRpcCpuOverhead = Micros(8);

/// Marginal endpoint cost of one extra sub-request coalesced into a batched
/// RPC (Fabric::CallBatch): the wire round trip, syscall and dispatch are
/// paid once per batch, so each additional sub-request only adds its own
/// marshalling work. Calibrated well below kRpcCpuOverhead — that gap is
/// exactly the amortization a multi-get buys.
constexpr Nanos kRpcBatchSubRequestCost = Micros(1);

/// Time a caller spends detecting a lost RPC or a flapped node before the
/// call fails Unavailable (connect timeout; the Thrift clients fail much
/// faster than libMemcached's kMcDeadInstanceCost below because DIESEL
/// tasks keep long-lived connections and see resets promptly).
constexpr Nanos kFaultDetectTimeout = Millis(5);

// ---------------------------------------------------------------------------
// Storage cluster (6 machines x 6 NVMe, Table 4; sweep shape from Table 2)
// ---------------------------------------------------------------------------
// Table 2 fit: files/s ~= C / (L + size/B) with C/L ~= 34.4k ops/s and
// aggregate B ~= 3.35 GB/s. We use 16 channels so the 16-thread sweep in
// bench_table2 has one channel per thread (no self-queueing at low load).

// (Device latency/bandwidth are net of the RPC+NIC path costs the fabric
// charges separately, so the end-to-end sweep lands on the paper's numbers.)
inline DeviceSpec SsdClusterSpec() {
  return {.name = "ssd-cluster", .channels = 16, .latency = Micros(388),
          .bytes_per_sec = 4.3e9 / 16};
}

/// Write path of the storage cluster. NVMe writes land in device buffers and
/// stripe across all 36 drives, so aggregate write bandwidth is well above
/// the random-read figure (the paper ingests ImageNet-1K, ~140GB, from
/// memory in ~3 seconds).
inline DeviceSpec SsdClusterWriteSpec() {
  return {.name = "ssd-cluster-write", .channels = 16, .latency = Micros(250),
          .bytes_per_sec = 8.0e9 / 16};
}

/// HDD-class backend tier (server cache misses go here): high seek cost,
/// decent streaming bandwidth.
inline DeviceSpec HddClusterSpec() {
  return {.name = "hdd-cluster", .channels = 16, .latency = Millis(6),
          .bytes_per_sec = 1.6e9 / 16};
}

// ---------------------------------------------------------------------------
// Lustre baseline
// ---------------------------------------------------------------------------
// MDS: ~68k QPS cap measured in the paper (Fig. 10b text). DNE enabled =>
// a few parallel service threads, each op ~59us.
inline DeviceSpec LustreMdsSpec() {
  return {.name = "lustre-mds", .channels = 4, .latency = Micros(59),
          .bytes_per_sec = 0.0};
}

/// Extra MDS->OSS RPC work for size-on-OSS stat (ls -lR pathology, Fig 10c):
/// multiple OSC glimpse RPCs per stat.
constexpr Nanos kLustreOssStatExtra = Micros(30);

/// Size-less stats during directory scans benefit from Lustre's statahead:
/// attributes are prefetched in batches, so most stats cost only this local
/// amortized time and a full MDS RPC is paid once per batch.
constexpr Nanos kLustreStataheadCost = Micros(20);
constexpr uint32_t kLustreStataheadBatch = 32;

/// Lustre OSS data path. Random 4KB file reads through the full POSIX stack
/// land near 40k files/s on 160 clients (Fig. 11a) once MDS + OSS costs are
/// paid; large reads stream at ~2 GB/s aggregate (Fig. 12, 128KB rows).
inline DeviceSpec LustreOssSpec() {
  return {.name = "lustre-oss", .channels = 24, .latency = Micros(400),
          .bytes_per_sec = 2.6e9 / 24};
}

/// Per-file lock/layout overhead charged on the client for each open.
constexpr Nanos kLustreClientOpenCost = Micros(25);

/// Lustre small-file write amplification: create involves an MDS transaction
/// plus OST object creation and layout locking; effectively serializes
/// around the MDS (paper: DIESEL writes 4KB files 366.7x faster).
constexpr Nanos kLustreCreateCost = Micros(600);

/// Per-file OSS commit/lock overhead on the write data path.
constexpr Nanos kLustreOssWriteExtra = Micros(1200);

// ---------------------------------------------------------------------------
// Redis-like metadata KV tier (16 instances on 4 nodes, Table 4)
// ---------------------------------------------------------------------------
// memtier-measured ceiling ~0.97M QPS across the tier (§6.3) => per-instance
// ~60k QPS, single-threaded service loop.
inline DeviceSpec RedisShardSpec(std::string name) {
  return {.name = std::move(name), .channels = 1, .latency = Micros(16),
          .bytes_per_sec = 2.0e9};
}

/// Marginal cost of one extra entry inside a pipelined batch command (the
/// shard's per-command latency is paid once per batch).
constexpr Nanos kKvBatchEntryCost = 1500;  // 1.5 us

// ---------------------------------------------------------------------------
// Memcached + twemproxy baseline
// ---------------------------------------------------------------------------
// Each node: memcached (16 threads) behind 8 proxy instances. Proxy adds a
// hop; no client-side batching for writes (libMemcached, §6.2).
inline DeviceSpec MemcachedNodeSpec(std::string name) {
  return {.name = std::move(name), .channels = 16, .latency = Micros(20),
          .bytes_per_sec = 3.0e9 / 16};
}

/// Twemproxy forwards requests; §6.2 notes it pipelines (merges) writes from
/// multiple clients but serves gets request-by-request, so reads carry a much
/// larger per-op proxy cost than writes.
inline DeviceSpec TwemproxySpec(std::string name) {
  return {.name = std::move(name), .channels = 8, .latency = 0,
          .bytes_per_sec = 2.5e9 / 8};
}
constexpr Nanos kProxyWriteCost = Micros(25);
constexpr Nanos kProxyReadCost = Micros(140);

/// Large items stress memcached's slab allocator and defeat the client
/// library's buffering; items above the threshold pay a per-byte penalty
/// (the 128KB write rows of Fig. 9 are far below wire speed in the paper).
constexpr uint64_t kMcLargeItemThreshold = 64 * 1024;
constexpr double kMcLargeItemNsPerByte = 40.0;

/// Cost of a get that lands on a dead/disabled instance: the client must
/// detect the connection failure (timeout + retry/backoff in libMemcached)
/// before falling back. This is what makes a ~5% miss fraction collapse
/// the reading speed by ~90% in Fig. 6.
constexpr Nanos kMcDeadInstanceCost = Millis(60);

// ---------------------------------------------------------------------------
// DIESEL node-local costs
// ---------------------------------------------------------------------------

/// In-memory copy bandwidth for cache hits (memcpy out of the chunk cache).
inline DeviceSpec MemBusSpec(std::string name) {
  return {.name = std::move(name), .channels = 8, .latency = Micros(2),
          .bytes_per_sec = 8.0e9};
}

/// FUSE user/kernel crossing per request (context switches, Fig. 11a gap).
constexpr Nanos kFuseCrossingCost = Micros(18);

/// Kernel splits FUSE reads into requests of at most this size.
constexpr uint64_t kFuseMaxRead = 128 * 1024;

/// DIESEL server request-executor CPU per file request (sort/merge path).
constexpr Nanos kServerExecutorCost = Micros(3);

/// libDIESEL client-side per-op cost (hashmap lookup etc. ~O(1), §6.3:
/// 8.83M QPS on one node with 16 threads => ~1.8us/op).
constexpr Nanos kSnapshotLookupCost = 1800;  // 1.8 us

/// Local XFS on NVMe (Fig. 10c third bar).
inline DeviceSpec XfsSpec() {
  return {.name = "xfs", .channels = 1, .latency = Micros(6),
          .bytes_per_sec = 2.8e9};
}

// ---------------------------------------------------------------------------
// GPU compute-time models (per-iteration forward+backward, batch 256/node,
// 8xV100; calibrated so Fig. 15 total times land in the paper's 37-66h range
// scaled down by the simulated epoch count).
// ---------------------------------------------------------------------------

struct ModelCompute {
  const char* name;
  Nanos iter_compute;   // GPU time per iteration (global batch 256 / 32 GPUs)
};

inline constexpr ModelCompute kAlexNet = {"alexnet", Millis(60)};
inline constexpr ModelCompute kVgg11 = {"vgg11", Millis(220)};
inline constexpr ModelCompute kResNet18 = {"resnet18", Millis(100)};
inline constexpr ModelCompute kResNet50 = {"resnet50", Millis(190)};

/// Per-image CPU preprocessing in the dataloader (JPEG decode + resize +
/// crop + normalize) — identical for both storage backends, and the reason
/// DIESEL's data access time is "about half" of Lustre's rather than 10x
/// smaller in Fig. 14.
constexpr Nanos kImagePreprocessCost = Micros(6000);

/// Extra per-file latency on the *shared production* Lustre the DLT tasks
/// read from (§2.1: many concurrent tasks saturate the shared filesystem);
/// the microbenchmarks use the unloaded model, Figs. 14/15 the loaded one.
constexpr Nanos kBusyLustrePerFileExtra = Micros(5000);

}  // namespace diesel::sim
