// Simulated cluster nodes.
//
// A SimNode bundles the per-machine shared resources (NIC, memory bus) and
// an availability flag used for failure injection. A Cluster owns a fleet of
// nodes; node identity is a dense index so tables keyed by NodeId stay flat.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/calibration.h"
#include "sim/device.h"

namespace diesel::sim {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class SimNode {
 public:
  SimNode(NodeId id, std::string name)
      : id_(id),
        name_(std::move(name)),
        nic_(NicSpec(name_ + "/nic")),
        membus_(MemBusSpec(name_ + "/mem")) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  Device& nic() { return nic_; }
  Device& membus() { return membus_; }

  /// Attach this node's shared devices to the metrics registry under the
  /// cluster-wide node label convention "n<id>".
  void BindDeviceMetrics() {
    const std::string node = "n" + std::to_string(id_);
    nic_.BindMetrics(node);
    membus_.BindMetrics(node);
  }

  bool up() const { return up_.load(std::memory_order_acquire); }
  void set_up(bool up) { up_.store(up, std::memory_order_release); }

 private:
  NodeId id_;
  std::string name_;
  Device nic_;
  Device membus_;
  std::atomic<bool> up_{true};
};

class Cluster {
 public:
  /// Create `n` nodes named "<prefix>0".."<prefix>{n-1}".
  explicit Cluster(size_t n, const std::string& prefix = "node") {
    nodes_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<SimNode>(
          static_cast<NodeId>(i), prefix + std::to_string(i)));
    }
  }

  size_t size() const { return nodes_.size(); }
  SimNode& node(NodeId id) { return *nodes_.at(id); }
  const SimNode& node(NodeId id) const { return *nodes_.at(id); }

  void FailNode(NodeId id) { node(id).set_up(false); }
  void RecoverNode(NodeId id) { node(id).set_up(true); }

  void ResetDevices() {
    for (auto& n : nodes_) {
      n->nic().Reset();
      n->membus().Reset();
    }
  }

  /// Bind every node's NIC and memory bus into the metrics registry. Opt-in
  /// because a 512-node fleet would mint ~9 series per device; callers gate
  /// on fleet size (see core::Deployment).
  void BindDeviceMetrics() {
    for (auto& n : nodes_) n->BindDeviceMetrics();
  }

 private:
  std::vector<std::unique_ptr<SimNode>> nodes_;
};

}  // namespace diesel::sim
