#include "dlt/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "dlt/dataset_gen.h"
#include "obs/metrics.h"

namespace diesel::dlt {

SoftmaxTrainer::SoftmaxTrainer(TrainerOptions options)
    : options_(options),
      w_(options_.num_classes * (options_.dims + 1), 0.0) {
  // Small symmetric init so epoch-1 accuracy starts near chance.
  Rng rng(options_.init_seed);
  for (double& v : w_) v = rng.NextGaussian() * 0.01;
}

Result<LabelledSample> SoftmaxTrainer::Decode(BytesView file) {
  LabelledSample s;
  DIESEL_RETURN_IF_ERROR(DecodeSample(file, s.label, s.features));
  return s;
}

void SoftmaxTrainer::Logits(const LabelledSample& s,
                            std::vector<double>& out) const {
  const size_t D = options_.dims;
  out.assign(options_.num_classes, 0.0);
  for (size_t c = 0; c < options_.num_classes; ++c) {
    const double* row = &w_[c * (D + 1)];
    double z = row[D];  // bias
    size_t n = std::min(D, s.features.size());
    for (size_t d = 0; d < n; ++d) z += row[d] * s.features[d];
    out[c] = z;
  }
}

double SoftmaxTrainer::TrainBatch(std::span<const LabelledSample> batch) {
  if (batch.empty()) return 0.0;
  const size_t D = options_.dims;
  const size_t C = options_.num_classes;
  std::vector<double> grad(w_.size(), 0.0);
  std::vector<double> logits;
  std::vector<double> probs(C);
  double loss = 0.0;

  for (const LabelledSample& s : batch) {
    Logits(s, logits);
    double zmax = *std::max_element(logits.begin(), logits.end());
    double zsum = 0.0;
    for (size_t c = 0; c < C; ++c) {
      probs[c] = std::exp(logits[c] - zmax);
      zsum += probs[c];
    }
    for (size_t c = 0; c < C; ++c) probs[c] /= zsum;
    size_t y = std::min<size_t>(s.label, C - 1);
    loss += -std::log(std::max(probs[y], 1e-12));
    for (size_t c = 0; c < C; ++c) {
      double g = probs[c] - (c == y ? 1.0 : 0.0);
      double* grow = &grad[c * (D + 1)];
      size_t n = std::min(D, s.features.size());
      for (size_t d = 0; d < n; ++d) grow[d] += g * s.features[d];
      grow[D] += g;
    }
  }

  double scale = options_.learning_rate / static_cast<double>(batch.size());
  for (size_t i = 0; i < w_.size(); ++i) {
    w_[i] -= scale * grad[i] +
             options_.learning_rate * options_.weight_decay * w_[i];
  }
  double mean_loss = loss / static_cast<double>(batch.size());
  auto& m = obs::Metrics();
  m.GetCounter("dlt.train.batches").Inc();
  m.GetCounter("dlt.train.samples").Inc(batch.size());
  m.GetHistogram("dlt.train.batch_loss").Observe(mean_loss);
  return mean_loss;
}

double SoftmaxTrainer::TrainEpoch(std::span<const LabelledSample> samples) {
  double loss_sum = 0.0;
  size_t batches = 0;
  for (size_t i = 0; i < samples.size(); i += options_.minibatch) {
    size_t n = std::min(options_.minibatch, samples.size() - i);
    loss_sum += TrainBatch(samples.subspan(i, n));
    ++batches;
  }
  return batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
}

double SoftmaxTrainer::TopKAccuracy(std::span<const LabelledSample> samples,
                                    size_t k) const {
  if (samples.empty()) return 0.0;
  std::vector<double> logits;
  size_t hit = 0;
  for (const LabelledSample& s : samples) {
    Logits(s, logits);
    double y_score = logits[std::min<size_t>(s.label, logits.size() - 1)];
    size_t better = 0;
    for (double z : logits) {
      if (z > y_score) ++better;
    }
    if (better < k) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(samples.size());
}

}  // namespace diesel::dlt
