// Real SGD training on the synthetic labelled dataset (Fig. 13).
//
// A softmax (multinomial logistic regression) classifier trained with
// mini-batch SGD. The shuffle-equivalence experiment feeds it sample files
// read through DIESEL in either shuffle-over-dataset or chunk-wise-shuffle
// order and compares top-1/top-5 accuracy per epoch — the paper's claim is
// that the curves coincide.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace diesel::dlt {

struct TrainerOptions {
  size_t num_classes = 10;
  size_t dims = 32;
  size_t minibatch = 32;
  double learning_rate = 0.05;
  double weight_decay = 1e-4;
  uint64_t init_seed = 1234;
};

struct LabelledSample {
  uint32_t label = 0;
  std::vector<float> features;
};

class SoftmaxTrainer {
 public:
  explicit SoftmaxTrainer(TrainerOptions options);

  /// Decode a serialized sample file (EncodeSample format).
  static Result<LabelledSample> Decode(BytesView file);

  /// One SGD step on a mini-batch. Returns the mean cross-entropy loss.
  double TrainBatch(std::span<const LabelledSample> batch);

  /// Feed an epoch worth of samples in the given order, stepping every
  /// `minibatch` samples (final partial batch included). Returns mean loss.
  double TrainEpoch(std::span<const LabelledSample> samples);

  /// Fraction of `samples` whose true label is within the top-k scores.
  double TopKAccuracy(std::span<const LabelledSample> samples, size_t k) const;

  const std::vector<double>& weights() const { return w_; }
  const TrainerOptions& options() const { return options_; }

 private:
  /// Scores (unnormalized logits) for one sample.
  void Logits(const LabelledSample& s, std::vector<double>& out) const;

  TrainerOptions options_;
  std::vector<double> w_;   // num_classes x (dims + 1), row-major, last = bias
};

}  // namespace diesel::dlt
