#include "dlt/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace diesel::dlt {

MlpTrainer::MlpTrainer(MlpOptions options)
    : options_(options),
      w1_(options_.hidden * (options_.dims + 1)),
      w2_(options_.num_classes * (options_.hidden + 1)) {
  // He-style init scaled to fan-in for the ReLU layer.
  Rng rng(options_.init_seed);
  double scale1 = std::sqrt(2.0 / static_cast<double>(options_.dims));
  for (double& v : w1_) v = rng.NextGaussian() * scale1;
  double scale2 = std::sqrt(2.0 / static_cast<double>(options_.hidden));
  for (double& v : w2_) v = rng.NextGaussian() * scale2;
}

void MlpTrainer::Forward(const LabelledSample& s,
                         std::vector<double>& hidden_out,
                         std::vector<double>& logits) const {
  const size_t D = options_.dims;
  const size_t H = options_.hidden;
  const size_t C = options_.num_classes;
  hidden_out.assign(H, 0.0);
  for (size_t h = 0; h < H; ++h) {
    const double* row = &w1_[h * (D + 1)];
    double z = row[D];
    size_t n = std::min(D, s.features.size());
    for (size_t d = 0; d < n; ++d) z += row[d] * s.features[d];
    hidden_out[h] = z > 0.0 ? z : 0.0;  // ReLU
  }
  logits.assign(C, 0.0);
  for (size_t c = 0; c < C; ++c) {
    const double* row = &w2_[c * (H + 1)];
    double z = row[H];
    for (size_t h = 0; h < H; ++h) z += row[h] * hidden_out[h];
    logits[c] = z;
  }
}

double MlpTrainer::TrainBatch(std::span<const LabelledSample> batch) {
  if (batch.empty()) return 0.0;
  const size_t D = options_.dims;
  const size_t H = options_.hidden;
  const size_t C = options_.num_classes;
  std::vector<double> g1(w1_.size(), 0.0);
  std::vector<double> g2(w2_.size(), 0.0);
  std::vector<double> hidden, logits, probs(C), dhidden(H);
  double loss = 0.0;

  for (const LabelledSample& s : batch) {
    Forward(s, hidden, logits);
    double zmax = *std::max_element(logits.begin(), logits.end());
    double zsum = 0.0;
    for (size_t c = 0; c < C; ++c) {
      probs[c] = std::exp(logits[c] - zmax);
      zsum += probs[c];
    }
    for (size_t c = 0; c < C; ++c) probs[c] /= zsum;
    size_t y = std::min<size_t>(s.label, C - 1);
    loss += -std::log(std::max(probs[y], 1e-12));

    // Backprop: output layer.
    std::fill(dhidden.begin(), dhidden.end(), 0.0);
    for (size_t c = 0; c < C; ++c) {
      double g = probs[c] - (c == y ? 1.0 : 0.0);
      double* grow = &g2[c * (H + 1)];
      const double* wrow = &w2_[c * (H + 1)];
      for (size_t h = 0; h < H; ++h) {
        grow[h] += g * hidden[h];
        dhidden[h] += g * wrow[h];
      }
      grow[H] += g;
    }
    // Hidden layer (ReLU gate).
    for (size_t h = 0; h < H; ++h) {
      if (hidden[h] <= 0.0) continue;  // gradient blocked by ReLU
      double* grow = &g1[h * (D + 1)];
      size_t n = std::min(D, s.features.size());
      for (size_t d = 0; d < n; ++d) grow[d] += dhidden[h] * s.features[d];
      grow[D] += dhidden[h];
    }
  }

  double scale = options_.learning_rate / static_cast<double>(batch.size());
  for (size_t i = 0; i < w1_.size(); ++i) {
    w1_[i] -= scale * g1[i] +
              options_.learning_rate * options_.weight_decay * w1_[i];
  }
  for (size_t i = 0; i < w2_.size(); ++i) {
    w2_[i] -= scale * g2[i] +
              options_.learning_rate * options_.weight_decay * w2_[i];
  }
  return loss / static_cast<double>(batch.size());
}

double MlpTrainer::TrainEpoch(std::span<const LabelledSample> samples) {
  double loss_sum = 0.0;
  size_t batches = 0;
  for (size_t i = 0; i < samples.size(); i += options_.minibatch) {
    size_t n = std::min(options_.minibatch, samples.size() - i);
    loss_sum += TrainBatch(samples.subspan(i, n));
    ++batches;
  }
  return batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
}

double MlpTrainer::TopKAccuracy(std::span<const LabelledSample> samples,
                                size_t k) const {
  if (samples.empty()) return 0.0;
  std::vector<double> hidden, logits;
  size_t hit = 0;
  for (const LabelledSample& s : samples) {
    Forward(s, hidden, logits);
    double y_score = logits[std::min<size_t>(s.label, logits.size() - 1)];
    size_t better = 0;
    for (double z : logits) {
      if (z > y_score) ++better;
    }
    if (better < k) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(samples.size());
}

}  // namespace diesel::dlt
