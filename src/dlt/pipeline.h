// DLT training pipeline timing model (Figs. 14/15).
//
// Mirrors the PyTorch example-code structure: W dataloader workers prefetch
// mini-batches (worker k reads batches k, k+W, k+2W, ... back to back) while
// the GPU consumes them in order. The per-iteration "data access time" is
// what the PyTorch AverageMeter measures: how long the training loop waited
// for the next batch after finishing the previous step. A shuffle stage at
// each epoch start delays all workers, producing the first-iteration spike
// the paper points out in Fig. 14.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "sim/calibration.h"
#include "sim/clock.h"

namespace diesel::dlt {

struct PipelineOptions {
  size_t io_workers = 4;
  sim::ModelCompute model = sim::kResNet50;
  /// true: dataloader workers prefetch ahead and data_time measures only the
  /// stall (ideal pipelining). false: each iteration's batch fetch (spread
  /// across the workers) serializes with compute — this matches what the
  /// paper's PyTorch example actually measures in Figs. 14/15, where fetch +
  /// decode/transform time shows up additively in every iteration.
  bool overlap = true;
  /// Called once per epoch at `start + shuffle_cost`, just before the first
  /// batch read — the point where the shuffle plan is fixed and a prefetch
  /// scheduler can install the epoch's access schedule and start filling.
  std::function<Status(Nanos workers_start)> epoch_start_hook;
  /// Called before every batch read with the iteration index and the reading
  /// worker's virtual time. Membership churn drivers hang off this hook to
  /// fire due join/drain/crash events mid-epoch, between batches.
  std::function<void(size_t iter, Nanos now)> batch_hook;
};

/// Reads the mini-batch for iteration `iter`, charging `worker_clock` with
/// the full I/O cost (backend-specific; supplied by the experiment).
using BatchReadFn =
    std::function<Status(size_t iter, sim::VirtualClock& worker_clock)>;

/// Stall attribution: every virtual nanosecond between epoch start and
/// `epoch_end` charged to exactly one phase. `fetch` is time the training
/// loop stalled waiting for data, `shuffle` the epoch-start file-list
/// generation, `train` the GPU compute, `other` snapshot/bookkeeping added
/// by the caller. Invariant: Total() == epoch_end - start.
struct PhaseBreakdown {
  Nanos fetch = 0;
  Nanos shuffle = 0;
  Nanos train = 0;
  Nanos other = 0;

  Nanos Total() const { return fetch + shuffle + train + other; }
};

struct EpochResult {
  std::vector<double> data_time_s;  // per-iteration wait for data
  Nanos epoch_end = 0;              // completion of the last compute step
  double total_data_wait_s = 0.0;
  double compute_s = 0.0;
  PhaseBreakdown phases;
};

class TrainingPipeline {
 public:
  explicit TrainingPipeline(PipelineOptions options) : options_(options) {}

  /// Run one epoch of `iterations` steps starting at virtual time `start`.
  /// `shuffle_cost` is charged before any worker begins (file-list
  /// generation). Returns per-iteration data waits, the epoch end time and
  /// the phase breakdown (which also feeds the `dlt.phase.*` histograms).
  Result<EpochResult> RunEpoch(Nanos start, size_t iterations,
                               Nanos shuffle_cost,
                               const BatchReadFn& read_batch) const;

 private:
  PipelineOptions options_;
};

}  // namespace diesel::dlt
