#include "dlt/dataset_gen.h"

#include <algorithm>
#include <cstdio>

#include "common/crc32.h"
#include "common/hash.h"

namespace diesel::dlt {

DatasetSpec ImageNetLike(size_t scale_files, uint64_t mean_bytes) {
  DatasetSpec spec;
  spec.name = "imagenet1k";
  spec.num_classes = 100;  // scaled from 1000 to keep directories realistic
  spec.files_per_class = scale_files / spec.num_classes;
  spec.mean_file_bytes = mean_bytes;
  spec.fixed_size = false;
  spec.seed = 0x1357;
  return spec;
}

DatasetSpec CifarLike(size_t scale_files) {
  DatasetSpec spec;
  spec.name = "cifar10";
  spec.num_classes = 10;
  spec.files_per_class = scale_files / spec.num_classes;
  spec.mean_file_bytes = 3 * 1024;  // 32x32x3 bytes
  spec.fixed_size = true;
  spec.seed = 0x2468;
  return spec;
}

DatasetSpec OpenImagesLike(size_t scale_files) {
  DatasetSpec spec;
  spec.name = "openimages";
  spec.num_classes = 600;  // scaled from the ~6000 boxable classes
  spec.files_per_class = std::max<size_t>(1, scale_files / spec.num_classes);
  spec.mean_file_bytes = 60 * 1024;
  spec.fixed_size = false;
  spec.seed = 0x369C;
  return spec;
}

namespace {

uint64_t FileSeed(const DatasetSpec& spec, size_t index) {
  return HashCombine(spec.seed, index);
}

uint64_t FileSize(const DatasetSpec& spec, size_t index) {
  if (spec.fixed_size || spec.mean_file_bytes < 8) return spec.mean_file_bytes;
  // +-25% jitter, deterministic per file.
  Rng rng(FileSeed(spec, index) ^ 0x515A45ULL);  // "SIZE" stream tag
  uint64_t lo = spec.mean_file_bytes * 3 / 4;
  uint64_t hi = spec.mean_file_bytes * 5 / 4;
  return rng.UniformRange(lo, hi);
}

void FillContent(uint64_t seed, Bytes& out) {
  // xoshiro stream in 8-byte blocks; tail bytes from one extra draw.
  Rng rng(seed);
  size_t full = out.size() / 8;
  auto* p = out.data();
  for (size_t i = 0; i < full; ++i) {
    uint64_t v = rng.Next();
    std::memcpy(p + i * 8, &v, 8);
  }
  size_t rem = out.size() % 8;
  if (rem > 0) {
    uint64_t v = rng.Next();
    std::memcpy(p + full * 8, &v, rem);
  }
}

}  // namespace

std::string FilePath(const DatasetSpec& spec, size_t index) {
  size_t cls = index % spec.num_classes;
  size_t i = index / spec.num_classes;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "/%s/train/cls%03zu/img%06zu.bin",
                spec.name.c_str(), cls, i);
  return buf;
}

GeneratedFile MakeFile(const DatasetSpec& spec, size_t index) {
  GeneratedFile f;
  f.path = FilePath(spec, index);
  f.content.resize(FileSize(spec, index));
  FillContent(FileSeed(spec, index), f.content);
  return f;
}

bool VerifyContent(const DatasetSpec& spec, size_t index, BytesView content) {
  if (content.size() != FileSize(spec, index)) return false;
  Bytes expected(content.size());
  FillContent(FileSeed(spec, index), expected);
  return std::equal(content.begin(), content.end(), expected.begin());
}

Status ForEachFile(const DatasetSpec& spec,
                   const std::function<Status(const GeneratedFile&)>& sink) {
  for (size_t i = 0; i < spec.total_files(); ++i) {
    DIESEL_RETURN_IF_ERROR(sink(MakeFile(spec, i)));
  }
  return Status::Ok();
}

// ---- labelled samples -------------------------------------------------------

Bytes EncodeSample(uint32_t label, const std::vector<float>& features) {
  BinaryWriter w(8 + features.size() * 4);
  w.PutU32(label);
  w.PutU32(static_cast<uint32_t>(features.size()));
  for (float v : features) {
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    w.PutU32(bits);
  }
  return std::move(w).Take();
}

Status DecodeSample(BytesView data, uint32_t& label,
                    std::vector<float>& features) {
  BinaryReader r(data);
  DIESEL_ASSIGN_OR_RETURN(label, r.ReadU32());
  DIESEL_ASSIGN_OR_RETURN(uint32_t dims, r.ReadU32());
  features.resize(dims);
  for (uint32_t i = 0; i < dims; ++i) {
    DIESEL_ASSIGN_OR_RETURN(uint32_t bits, r.ReadU32());
    std::memcpy(&features[i], &bits, 4);
  }
  return Status::Ok();
}

uint32_t SampleLabel(const SampleSpec& spec, size_t index) {
  return static_cast<uint32_t>(index % spec.num_classes);
}

Bytes MakeSample(const SampleSpec& spec, size_t index) {
  uint32_t label = SampleLabel(spec, index);
  // Class mean: deterministic gaussian direction per class.
  Rng mean_rng(HashCombine(spec.seed, label));
  Rng noise_rng(HashCombine(spec.seed ^ 0xABCDEF, index));
  std::vector<float> x(spec.dims);
  for (size_t d = 0; d < spec.dims; ++d) {
    double mean = mean_rng.NextGaussian() * spec.separation;
    x[d] = static_cast<float>(mean + noise_rng.NextGaussian());
  }
  return EncodeSample(label, x);
}

}  // namespace diesel::dlt
