#include "dlt/distributed_task.h"

#include <algorithm>

namespace diesel::dlt {

DistributedTrainingTask::DistributedTrainingTask(core::Deployment& deployment,
                                                 std::string dataset,
                                                 DistributedTaskOptions options)
    : deployment_(deployment), dataset_(std::move(dataset)),
      options_(options), rng_(options.seed) {}

Status DistributedTrainingTask::Setup() {
  if (options_.num_nodes > deployment_.num_client_nodes())
    return Status::InvalidArgument("deployment has too few client nodes");
  if (options_.num_nodes == 0 || options_.io_workers_per_node == 0 ||
      options_.minibatch == 0) {
    return Status::InvalidArgument("task shape must be non-zero");
  }

  // One DIESEL client per I/O worker (Fig. 7); registration order gives
  // the master ranks.
  for (size_t n = 0; n < options_.num_nodes; ++n) {
    for (size_t w = 0; w < options_.io_workers_per_node; ++w) {
      clients_.push_back(deployment_.MakeClient(
          n, static_cast<uint32_t>(100 + w), dataset_));
      registry_.Register(clients_.back()->endpoint());
    }
  }
  DIESEL_RETURN_IF_ERROR(clients_[0]->FetchSnapshot());
  snapshot_ =
      std::make_unique<core::MetadataSnapshot>(*clients_[0]->snapshot());

  if (options_.use_task_cache) {
    cache_ = std::make_unique<cache::TaskCache>(
        deployment_.fabric(), deployment_.server(0), *snapshot_, registry_,
        options_.cache);
    cache_->EstablishConnections();
    if (options_.cache.policy == cache::CachePolicy::kOneshot) {
      DIESEL_ASSIGN_OR_RETURN(task_time_, cache_->Preload(0));
    }
    for (auto& client : clients_) {
      handles_.push_back(cache_->HandleFor(client->endpoint()));
      client->AttachCache(handles_.back().get());
    }
  } else {
    // Memory-constrained mode: one group-window reader per I/O worker.
    for (size_t n = 0; n < options_.num_nodes; ++n) {
      for (size_t w = 0; w < options_.io_workers_per_node; ++w) {
        readers_.push_back(std::make_unique<shuffle::GroupWindowReader>(
            deployment_.server((n + w) % deployment_.num_servers()),
            *snapshot_, static_cast<sim::NodeId>(n)));
      }
    }
  }
  ready_ = true;
  return Status::Ok();
}

Result<EpochReport> DistributedTrainingTask::RunEpoch(
    const std::function<Status(std::span<const Bytes>)>& on_batch) {
  if (!ready_) return Status::FailedPrecondition("Setup() has not succeeded");

  EpochReport report;
  report.epoch = ++epoch_;
  shuffle::ShufflePlan plan =
      shuffle::ChunkWiseShuffle(*snapshot_, options_.shuffle, rng_);

  const size_t parts = clients_.size();
  std::vector<Nanos> node_end(options_.num_nodes, task_time_);

  for (size_t part = 0; part < parts; ++part) {
    size_t node = part % options_.num_nodes;
    shuffle::ShufflePlan sub = shuffle::PartitionPlan(plan, part, parts);
    std::vector<Bytes> batch;
    batch.reserve(options_.minibatch);

    auto deliver = [&]() -> Status {
      if (batch.empty()) return Status::Ok();
      Status st = on_batch(batch);
      batch.clear();
      return st;
    };

    if (options_.use_task_cache) {
      core::DieselClient& client = *clients_[part];
      client.clock().AdvanceTo(task_time_);
      for (uint32_t idx : sub.file_order) {
        const core::FileMeta& fm = snapshot_->files()[idx];
        DIESEL_ASSIGN_OR_RETURN(Bytes content, client.Get(fm.full_name));
        report.bytes_read += content.size();
        ++report.files_read;
        batch.push_back(std::move(content));
        if (batch.size() == options_.minibatch) DIESEL_RETURN_IF_ERROR(deliver());
      }
      DIESEL_RETURN_IF_ERROR(deliver());
      node_end[node] = std::max(node_end[node], client.clock().now());
    } else {
      shuffle::GroupWindowReader& reader = *readers_[part];
      reader.StartEpoch(std::move(sub));
      sim::VirtualClock clock(task_time_);
      while (!reader.Done()) {
        DIESEL_ASSIGN_OR_RETURN(Bytes content, reader.Next(clock));
        report.bytes_read += content.size();
        ++report.files_read;
        batch.push_back(std::move(content));
        if (batch.size() == options_.minibatch) DIESEL_RETURN_IF_ERROR(deliver());
      }
      DIESEL_RETURN_IF_ERROR(deliver());
      node_end[node] = std::max(node_end[node], clock.now());
    }
  }

  Nanos slowest = *std::max_element(node_end.begin(), node_end.end());
  Nanos fastest = *std::min_element(node_end.begin(), node_end.end());
  report.epoch_seconds = ToSeconds(slowest - task_time_);
  report.slowest_node_seconds = report.epoch_seconds;
  report.fastest_node_seconds = ToSeconds(fastest - task_time_);
  task_time_ = slowest;
  return report;
}

}  // namespace diesel::dlt
