// Two-layer MLP (one hidden ReLU layer + softmax output) trained with
// mini-batch SGD — the second model family for the Fig. 13 experiments
// (the paper trains both ResNet-50 and ResNet-18; we pair the softmax
// classifier with this non-linear model so the shuffle-equivalence claim is
// checked on two optimization landscapes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "dlt/trainer.h"  // LabelledSample

namespace diesel::dlt {

struct MlpOptions {
  size_t num_classes = 10;
  size_t dims = 32;
  size_t hidden = 64;
  size_t minibatch = 32;
  double learning_rate = 0.01;
  double weight_decay = 1e-4;
  uint64_t init_seed = 4321;
};

class MlpTrainer {
 public:
  explicit MlpTrainer(MlpOptions options);

  /// One SGD step; returns mean cross-entropy loss over the batch.
  double TrainBatch(std::span<const LabelledSample> batch);

  /// Feed an epoch in the given order, stepping every `minibatch` samples.
  double TrainEpoch(std::span<const LabelledSample> samples);

  double TopKAccuracy(std::span<const LabelledSample> samples,
                      size_t k) const;

  const MlpOptions& options() const { return options_; }

 private:
  /// Forward pass: fills `hidden_out` (post-ReLU) and `logits`.
  void Forward(const LabelledSample& s, std::vector<double>& hidden_out,
               std::vector<double>& logits) const;

  MlpOptions options_;
  // Layer 1: hidden x (dims + 1); layer 2: classes x (hidden + 1).
  std::vector<double> w1_;
  std::vector<double> w2_;
};

}  // namespace diesel::dlt
