// Synthetic training-dataset generation.
//
// The paper's file-level experiments use "hundreds of millions of files with
// random contents" and the DLT experiments use ImageNet-1K / CIFAR-10. We
// generate deterministic pseudo-random datasets with the same *structure*
// (class directories, small-file size distributions) at bench-friendly
// scale, plus labelled feature-vector datasets for the real SGD runs
// (Fig. 13). Substitution documented in DESIGN.md.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"

namespace diesel::dlt {

struct DatasetSpec {
  std::string name = "synth";
  size_t num_classes = 10;
  size_t files_per_class = 100;
  /// Mean file size; actual sizes jitter +-25% unless fixed_size.
  uint64_t mean_file_bytes = 8 * 1024;
  bool fixed_size = false;
  uint64_t seed = 42;

  size_t total_files() const { return num_classes * files_per_class; }
};

/// ImageNet-1K-like structure scaled down (paper: 1.28M files, avg ~110KB).
DatasetSpec ImageNetLike(size_t scale_files, uint64_t mean_bytes = 110 * 1024);
/// CIFAR-10-like: tiny fixed-size records in 10 classes.
DatasetSpec CifarLike(size_t scale_files);
/// Open-Images-like (paper intro: ~9M images averaging ~60KB): many more
/// classes, smaller files — stresses the metadata plane hardest.
DatasetSpec OpenImagesLike(size_t scale_files);

/// One generated file (path + content).
struct GeneratedFile {
  std::string path;    // "/<dataset>/train/cls<c>/img<i>.bin"
  Bytes content;
};

/// Deterministic content for file `index` (seed-derived, verifiable via
/// VerifyContent). Size depends on the spec's distribution.
GeneratedFile MakeFile(const DatasetSpec& spec, size_t index);

/// Check that `content` matches what MakeFile(spec, index) produced.
bool VerifyContent(const DatasetSpec& spec, size_t index, BytesView content);

/// Path of file `index` without generating the content (cheap).
std::string FilePath(const DatasetSpec& spec, size_t index);

/// Stream every file through `sink` (used to ingest into DIESEL / Lustre /
/// Memcached without holding the dataset in memory twice).
Status ForEachFile(const DatasetSpec& spec,
                   const std::function<Status(const GeneratedFile&)>& sink);

// ---- labelled feature vectors for real SGD training (Fig. 13) -------------

struct SampleSpec {
  size_t num_classes = 10;
  size_t dims = 32;
  /// Class-mean separation vs unit noise: larger = easier problem.
  double separation = 3.0;
  uint64_t seed = 7;
};

/// Serialized sample: label u32 | dims u32 | dims x float32.
Bytes EncodeSample(uint32_t label, const std::vector<float>& features);
Status DecodeSample(BytesView data, uint32_t& label,
                    std::vector<float>& features);

/// Draw sample `index` of class `index % num_classes` from the synthetic
/// Gaussian mixture (deterministic in (spec.seed, index)).
Bytes MakeSample(const SampleSpec& spec, size_t index);

/// Ground-truth label of sample `index`.
uint32_t SampleLabel(const SampleSpec& spec, size_t index);

}  // namespace diesel::dlt
