#include "dlt/pipeline.h"

#include <algorithm>

#include "obs/metrics.h"

namespace diesel::dlt {
namespace {

// Publish one epoch's stall attribution. Histograms (ns per epoch) give the
// cross-epoch distribution; the counter counts epochs so reports can
// normalize.
void PublishPhases(const PhaseBreakdown& phases) {
  auto& m = obs::Metrics();
  m.GetHistogram("dlt.phase.fetch_ns").Observe(static_cast<double>(phases.fetch));
  m.GetHistogram("dlt.phase.shuffle_ns")
      .Observe(static_cast<double>(phases.shuffle));
  m.GetHistogram("dlt.phase.train_ns").Observe(static_cast<double>(phases.train));
  m.GetHistogram("dlt.phase.other_ns").Observe(static_cast<double>(phases.other));
  m.GetCounter("dlt.epochs").Inc();
}

}  // namespace

Result<EpochResult> TrainingPipeline::RunEpoch(
    Nanos start, size_t iterations, Nanos shuffle_cost,
    const BatchReadFn& read_batch) const {
  EpochResult result;
  result.data_time_s.reserve(iterations);
  result.phases.shuffle = shuffle_cost;

  const size_t W = std::max<size_t>(1, options_.io_workers);

  if (options_.epoch_start_hook) {
    DIESEL_RETURN_IF_ERROR(options_.epoch_start_hook(start + shuffle_cost));
  }

  if (!options_.overlap) {
    // Serialized fetch: each iteration reads its batch (parallelized across
    // the W workers, approximated as fetch/W) and only then computes.
    Nanos t = start + shuffle_cost;
    for (size_t i = 0; i < iterations; ++i) {
      sim::VirtualClock scratch(t);
      if (options_.batch_hook) options_.batch_hook(i, scratch.now());
      DIESEL_RETURN_IF_ERROR(read_batch(i, scratch));
      Nanos fetch = (scratch.now() - t) / W;
      Nanos wait = fetch + (i == 0 ? shuffle_cost : 0);
      result.data_time_s.push_back(ToSeconds(wait));
      result.total_data_wait_s += ToSeconds(wait);
      t += fetch + options_.model.iter_compute;
      result.compute_s += ToSeconds(options_.model.iter_compute);
      result.phases.fetch += fetch;
      result.phases.train += options_.model.iter_compute;
    }
    result.epoch_end = t;
    PublishPhases(result.phases);
    return result;
  }
  std::vector<sim::VirtualClock> workers(W,
                                         sim::VirtualClock(start + shuffle_cost));
  std::vector<Nanos> ready(iterations, 0);

  // Workers prefetch their assigned batches back to back.
  for (size_t i = 0; i < iterations; ++i) {
    sim::VirtualClock& w = workers[i % W];
    if (options_.batch_hook) options_.batch_hook(i, w.now());
    DIESEL_RETURN_IF_ERROR(read_batch(i, w));
    ready[i] = w.now();
  }

  // The training loop consumes batches in order.
  Nanos compute_free = start + shuffle_cost;
  for (size_t i = 0; i < iterations; ++i) {
    Nanos wait = ready[i] > compute_free ? ready[i] - compute_free : 0;
    // The wait is a genuine timeline stall, charged to the fetch phase; the
    // i == 0 shuffle add below is reporting-only (Fig. 14's first-iteration
    // spike) and already covered by the shuffle phase.
    result.phases.fetch += wait;
    // The epoch-start shuffle shows up in iteration 0's data time, as in
    // Fig. 14 ("the average data access time goes up in the first iteration
    // of each epoch").
    if (i == 0) wait += shuffle_cost;
    result.data_time_s.push_back(ToSeconds(wait));
    result.total_data_wait_s += ToSeconds(wait);
    Nanos begin = std::max(ready[i], compute_free);
    compute_free = begin + options_.model.iter_compute;
    result.compute_s += ToSeconds(options_.model.iter_compute);
    result.phases.train += options_.model.iter_compute;
  }
  result.epoch_end = compute_free;
  PublishPhases(result.phases);
  return result;
}

}  // namespace diesel::dlt
