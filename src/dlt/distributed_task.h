// DistributedTrainingTask: the one-stop orchestration a DLT job uses.
//
// Wires together everything the paper's client side deploys per task:
// one DIESEL client per I/O worker on every node, task registration and
// master election (Fig. 7), the task-grained distributed cache, the
// per-epoch chunk-wise shuffle, and per-node epoch timing. User code only
// supplies a mini-batch callback (e.g. an SGD step).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cache/registry.h"
#include "cache/task_cache.h"
#include "core/deployment.h"
#include "shuffle/group_reader.h"
#include "shuffle/shuffle.h"

namespace diesel::dlt {

struct DistributedTaskOptions {
  size_t num_nodes = 4;
  size_t io_workers_per_node = 4;
  size_t minibatch = 32;
  shuffle::ChunkShuffleOptions shuffle{};
  cache::TaskCacheOptions cache{};
  /// Use the task-grained cache (true) or chunk-wise group windows straight
  /// from the servers (false, the memory-constrained mode of §4.3).
  bool use_task_cache = true;
  uint64_t seed = 42;
};

struct EpochReport {
  size_t epoch = 0;
  size_t files_read = 0;
  uint64_t bytes_read = 0;
  double epoch_seconds = 0;      // virtual makespan across nodes
  double slowest_node_seconds = 0;
  double fastest_node_seconds = 0;
};

class DistributedTrainingTask {
 public:
  /// `deployment` must outlive the task; `dataset` must already be ingested.
  DistributedTrainingTask(core::Deployment& deployment, std::string dataset,
                          DistributedTaskOptions options);

  /// Create clients, register them, fetch the snapshot, build the cache
  /// (preloading it under the oneshot policy) and open connections.
  Status Setup();

  /// Run one epoch: every file is delivered exactly once across all nodes
  /// in chunk-wise-shuffled order; `on_batch` is invoked per mini-batch with
  /// the file contents (node-local batches). Timing is virtual.
  Result<EpochReport> RunEpoch(
      const std::function<Status(std::span<const Bytes>)>& on_batch);

  const core::MetadataSnapshot& snapshot() const { return *snapshot_; }
  cache::TaskCache* cache() { return cache_.get(); }
  size_t epochs_run() const { return epoch_; }

 private:
  core::Deployment& deployment_;
  std::string dataset_;
  DistributedTaskOptions options_;

  std::vector<std::unique_ptr<core::DieselClient>> clients_;
  std::vector<std::unique_ptr<core::DatasetCacheInterface>> handles_;
  cache::TaskRegistry registry_;
  std::unique_ptr<core::MetadataSnapshot> snapshot_;
  std::unique_ptr<cache::TaskCache> cache_;
  std::vector<std::unique_ptr<shuffle::GroupWindowReader>> readers_;
  Rng rng_{42};
  size_t epoch_ = 0;
  Nanos task_time_ = 0;
  bool ready_ = false;
};

}  // namespace diesel::dlt
