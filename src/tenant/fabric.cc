#include "tenant/fabric.h"

#include <algorithm>

#include "obs/metrics.h"

namespace diesel::tenant {

namespace {

/// Fabric-wide registry handles, resolved once.
struct FabricGauges {
  obs::Gauge& resident_bytes;
  obs::Gauge& resident_chunks;
  obs::Gauge& tenants_active;
  obs::Counter& declined_chunks;
  obs::Counter& invalidated_chunks;
};

FabricGauges& FbGauges() {
  static FabricGauges g{
      obs::Metrics().GetGauge("tenant.fabric.resident_bytes"),
      obs::Metrics().GetGauge("tenant.fabric.resident_chunks"),
      obs::Metrics().GetGauge("tenant.fabric.tenants_active"),
      obs::Metrics().GetCounter("tenant.fabric.declined_chunks"),
      obs::Metrics().GetCounter("tenant.fabric.invalidated_chunks"),
  };
  return g;
}

bool AnyVerified(const std::vector<bool>& verified) {
  return std::any_of(verified.begin(), verified.end(),
                     [](bool v) { return v; });
}

/// Adoption RPC request overhead (chunk id + directory bookkeeping).
constexpr uint64_t kAdoptRequestBytes = 96;

}  // namespace

// ---------------------------------------------------------------------------
// TenantBinding — thin forwarding layer; all state lives in the fabric.

Result<cache::SharedCacheTier::Adopted> TenantBinding::Adopt(
    sim::VirtualClock& clock, sim::NodeId reader, size_t chunk_index) {
  return fabric_->AdoptImpl(slot_, clock, reader, chunk_index);
}

void TenantBinding::Publish(sim::NodeId home, size_t chunk_index,
                            const core::ChunkBuffer& buffer,
                            const std::vector<bool>& verified, Nanos now) {
  (void)now;
  fabric_->Offer(slot_, home, chunk_index, buffer, verified, /*demote=*/false);
}

uint64_t TenantBinding::Demote(sim::NodeId home, size_t chunk_index,
                               const core::ChunkBuffer& buffer,
                               const std::vector<bool>& verified, Nanos now) {
  (void)now;
  return fabric_->Offer(slot_, home, chunk_index, buffer, verified,
                        /*demote=*/true);
}

void TenantBinding::Invalidate(size_t chunk_index,
                               const core::ChunkBuffer& buffer) {
  fabric_->InvalidateImpl(slot_, chunk_index, buffer);
}

std::string TenantBinding::dataset() const { return fabric_->DatasetOf(slot_); }

uint64_t TenantBinding::PrefetchBudgetBytes(uint64_t base) const {
  return fabric_->GovernedBudget(slot_, base);
}

// ---------------------------------------------------------------------------
// CacheFabric

CacheFabric::CacheFabric(net::Fabric& fabric, FabricOptions options)
    : fabric_(fabric), options_(options) {}

TenantBinding* CacheFabric::RegisterTenant(const std::string& dataset,
                                           TenantOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Revive a departed tenant of the same name (task restart keeps its
  // accounting history and re-owns its residue at full weight). A name that
  // is still active belongs to a live task: handing out its binding again
  // would alias two tasks onto one accounting row (and double-count the
  // active gauge), so the registration is rejected instead.
  for (auto& t : tenants_) {
    if (t->opts.name == options.name) {
      if (t->active) return nullptr;
      t->opts = std::move(options);
      t->dataset = dataset;
      t->active = true;
      FbGauges().tenants_active.Add(1.0);
      return t->binding.get();
    }
  }
  auto rec = std::make_unique<TenantRec>();
  size_t slot = tenants_.size();
  rec->opts = std::move(options);
  rec->dataset = dataset;
  obs::Labels labels{{"tenant", rec->opts.name}};
  rec->series.resident_bytes =
      &obs::Metrics().GetGauge("tenant.resident_bytes", labels);
  rec->series.resident_chunks =
      &obs::Metrics().GetGauge("tenant.resident_chunks", labels);
  rec->series.adopted_chunks =
      &obs::Metrics().GetCounter("tenant.fabric.adopted_chunks", labels);
  rec->series.shared_hits =
      &obs::Metrics().GetCounter("tenant.shared_hits", labels);
  rec->series.evictions =
      &obs::Metrics().GetCounter("tenant.evictions", labels);
  rec->series.evicted_by_other =
      &obs::Metrics().GetCounter("tenant.evicted_by_other", labels);
  rec->binding.reset(new TenantBinding(this, slot, rec->opts.name));
  tenants_.push_back(std::move(rec));
  FbGauges().tenants_active.Add(1.0);
  return tenants_.back()->binding.get();
}

void CacheFabric::DeregisterTenant(TenantBinding* binding) {
  if (binding == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TenantRec& t = *tenants_.at(binding->slot_);
  if (!t.active) return;
  t.active = false;
  FbGauges().tenants_active.Add(-1.0);
}

double CacheFabric::EffectiveWeight(const TenantRec& t) const {
  double w = t.opts.weight > 0.0 ? t.opts.weight : 1.0;
  return t.active ? w : w * options_.departed_weight;
}

bool CacheFabric::EvictOldestLocked(size_t victim, size_t for_tenant) {
  TenantRec& v = *tenants_[victim];
  while (!v.fifo.empty()) {
    Key key = v.fifo.front();
    v.fifo.pop_front();
    auto it = directory_.find(key);
    // Lazy FIFO: skip entries that were overwritten or re-owned since.
    if (it == directory_.end() || it->second.owner != victim) continue;
    uint64_t sz = it->second.buffer.size();
    directory_.erase(it);
    bytes_ -= sz;
    v.charged_bytes -= sz;
    --v.resident_chunks;
    ++v.evictions;
    v.series.evictions->Inc();
    v.series.resident_bytes->Set(static_cast<double>(v.charged_bytes));
    v.series.resident_chunks->Set(static_cast<double>(v.resident_chunks));
    FbGauges().resident_bytes.Set(static_cast<double>(bytes_));
    FbGauges().resident_chunks.Set(static_cast<double>(directory_.size()));
    if (victim != for_tenant) {
      ++v.evicted_by_other;
      v.series.evicted_by_other->Inc();
    }
    return true;
  }
  return false;
}

bool CacheFabric::AdmitLocked(size_t slot, uint64_t bytes) {
  TenantRec& t = *tenants_[slot];
  // Per-tenant hard budget: shrink own footprint first; a chunk larger than
  // the whole budget can never be admitted.
  if (t.opts.budget_bytes != 0) {
    if (bytes > t.opts.budget_bytes) return false;
    while (t.charged_bytes + bytes > t.opts.budget_bytes) {
      if (!EvictOldestLocked(slot, slot)) return false;
    }
  }
  if (options_.capacity_bytes == 0) return true;
  if (bytes > options_.capacity_bytes) return false;
  // Weighted fair capacity: repeatedly evict from the tenant carrying the
  // most bytes per unit of effective weight. Deterministic: ties break on
  // the lower slot index.
  while (bytes_ + bytes > options_.capacity_bytes) {
    size_t victim = tenants_.size();
    double worst = -1.0;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      const TenantRec& c = *tenants_[i];
      if (c.fifo.empty() || c.resident_chunks == 0) continue;
      double ratio = static_cast<double>(c.charged_bytes) / EffectiveWeight(c);
      if (ratio > worst) {
        worst = ratio;
        victim = i;
      }
    }
    if (victim == tenants_.size()) return false;  // nothing evictable
    if (!EvictOldestLocked(victim, slot)) {
      // Stale FIFO drained without a real entry; drop the tenant from
      // consideration by clearing its (now empty) queue and retry.
      if (tenants_[victim]->fifo.empty()) continue;
      return false;
    }
  }
  return true;
}

uint64_t CacheFabric::Offer(size_t slot, sim::NodeId home, size_t chunk_index,
                            const core::ChunkBuffer& buffer,
                            const std::vector<bool>& verified, bool demote) {
  if (!buffer) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  TenantRec& t = *tenants_.at(slot);
  Key key{t.dataset, chunk_index};
  if (!demote) ++t.published_chunks;
  auto it = directory_.find(key);
  if (it != directory_.end()) {
    // Already shared: the bytes are retained regardless of who owns them.
    // Refresh the home hint so adoptions ride the freshest copy.
    Entry& e = it->second;
    if (home != sim::kInvalidNode) e.home = home;
    if (e.buffer.shared_blob() == buffer.shared_blob()) {
      // Byte-identical share: fold the caller's CRC memo in (a union —
      // verification of the same immutable blob never regresses).
      if (e.verified.size() < verified.size())
        e.verified.resize(verified.size());
      for (size_t i = 0; i < verified.size(); ++i) {
        if (verified[i]) e.verified[i] = true;
      }
    } else if (AnyVerified(verified)) {
      // A DIFFERENT blob carrying fresh verification: the resident copy may
      // be a corrupt blob published before any CRC scan, which the caller
      // just detected, refetched around and verified. The memo only vouches
      // for the caller's bytes, so unioning it onto the resident buffer
      // would mark corruption verified — replace the buffer AND the memo
      // wholesale instead. The owner keeps the charge (re-priced if the
      // sizes differ).
      TenantRec& o = *tenants_.at(e.owner);
      uint64_t old_sz = e.buffer.size();
      uint64_t new_sz = buffer.size();
      e.buffer = buffer;
      e.verified = verified;
      if (old_sz != new_sz) {
        bytes_ += new_sz - old_sz;
        o.charged_bytes += new_sz - old_sz;
        o.series.resident_bytes->Set(static_cast<double>(o.charged_bytes));
        FbGauges().resident_bytes.Set(static_cast<double>(bytes_));
      }
    }
    // else: a different, unverified blob — nothing trustworthy to merge;
    // the resident entry and its memo stand.
    if (demote) ++t.demoted_chunks;
    return e.buffer.size();
  }
  uint64_t sz = buffer.size();
  if (!AdmitLocked(slot, sz)) {
    FbGauges().declined_chunks.Inc();
    return 0;
  }
  Entry entry;
  entry.buffer = buffer;  // refcount share — no copy
  entry.verified = verified;
  entry.home = home;
  entry.owner = slot;
  directory_.emplace(key, std::move(entry));
  bytes_ += sz;
  t.charged_bytes += sz;
  ++t.resident_chunks;
  if (demote) ++t.demoted_chunks;
  t.fifo.push_back(key);
  t.series.resident_bytes->Set(static_cast<double>(t.charged_bytes));
  t.series.resident_chunks->Set(static_cast<double>(t.resident_chunks));
  FbGauges().resident_bytes.Set(static_cast<double>(bytes_));
  FbGauges().resident_chunks.Set(static_cast<double>(directory_.size()));
  return sz;
}

void CacheFabric::InvalidateImpl(size_t slot, size_t chunk_index,
                                 const core::ChunkBuffer& buffer) {
  if (!buffer) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TenantRec& t = *tenants_.at(slot);
  auto it = directory_.find(Key{t.dataset, chunk_index});
  if (it == directory_.end()) return;
  Entry& e = it->second;
  // Identity check: a concurrent publish may already have replaced the
  // corrupt blob with a verified one — don't throw the good copy away.
  if (e.buffer.shared_blob() != buffer.shared_blob()) return;
  TenantRec& o = *tenants_.at(e.owner);
  uint64_t sz = e.buffer.size();
  directory_.erase(it);
  bytes_ -= sz;
  o.charged_bytes -= sz;
  --o.resident_chunks;
  // The owner's FIFO keeps a stale key; the lazy victim scan skips it.
  o.series.resident_bytes->Set(static_cast<double>(o.charged_bytes));
  o.series.resident_chunks->Set(static_cast<double>(o.resident_chunks));
  FbGauges().resident_bytes.Set(static_cast<double>(bytes_));
  FbGauges().resident_chunks.Set(static_cast<double>(directory_.size()));
  FbGauges().invalidated_chunks.Inc();
}

std::string CacheFabric::DatasetOf(size_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.at(slot)->dataset;
}

Result<cache::SharedCacheTier::Adopted> CacheFabric::AdoptImpl(
    size_t slot, sim::VirtualClock& clock, sim::NodeId reader,
    size_t chunk_index) {
  core::ChunkBuffer buffer;
  std::vector<bool> verified;
  sim::NodeId home = sim::kInvalidNode;
  size_t provider = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantRec& t = *tenants_.at(slot);
    auto it = directory_.find(Key{t.dataset, chunk_index});
    if (it == directory_.end()) {
      return Status::NotFound("chunk not resident in shared tier");
    }
    buffer = it->second.buffer;
    verified = it->second.verified;
    home = it->second.home;
    provider = it->second.owner;
  }
  // Charge virtual time OUTSIDE the lock (the handler may recurse into
  // shared devices). Cross-node adoption pays one RPC carrying the chunk;
  // if the home node is gone (crashed / migrated away), the bytes are still
  // alive via the directory's refcount — serve them locally and re-home the
  // entry to the reader, so the fabric degrades with membership churn
  // instead of failing adoptions.
  bool rehome = false;
  if (home != sim::kInvalidNode && home != reader &&
      fabric_.NodeAvailable(home, clock.now())) {
    Status st = fabric_.Call(
        clock, reader, home, kAdoptRequestBytes, buffer.size(),
        [&](Nanos arrival) {
          return fabric_.cluster().node(home).membus().Serve(arrival,
                                                             buffer.size());
        });
    if (!st.ok()) rehome = true;
  } else if (home != reader) {
    rehome = true;
  }
  if (rehome) {
    Nanos t = fabric_.cluster().node(reader).membus().Serve(clock.now(),
                                                            buffer.size());
    clock.AdvanceTo(t);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantRec& t = *tenants_.at(slot);
    auto it = directory_.find(Key{t.dataset, chunk_index});
    if (it != directory_.end()) {
      ++it->second.hits;
      if (rehome) it->second.home = reader;
    }
    ++t.adopted_chunks;
    t.adopted_bytes += buffer.size();
    t.series.adopted_chunks->Inc();
    if (provider < tenants_.size()) {
      tenants_[provider]->shared_hits++;
      tenants_[provider]->series.shared_hits->Inc();
    }
  }
  cache::SharedCacheTier::Adopted out;
  out.buffer = std::move(buffer);
  out.verified = std::move(verified);
  return out;
}

uint64_t CacheFabric::GovernedBudget(size_t slot, uint64_t base) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t pool = options_.prefetch_pool_bytes_per_node;
  if (pool == 0) return base;
  const TenantRec& t = *tenants_.at(slot);
  if (!t.active) return base;
  double total = 0.0;
  for (const auto& c : tenants_) {
    if (c->active) total += c->opts.weight > 0.0 ? c->opts.weight : 1.0;
  }
  if (total <= 0.0) return base;
  double w = t.opts.weight > 0.0 ? t.opts.weight : 1.0;
  auto share = static_cast<uint64_t>(static_cast<double>(pool) * w / total);
  if (share == 0) share = 1;  // a zero budget would read as "unbounded"
  return base == 0 ? share : std::min(base, share);
}

std::vector<TenantStats> CacheFabric::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    TenantStats s;
    s.name = t->opts.name;
    s.weight = t->opts.weight;
    s.active = t->active;
    s.resident_bytes = t->charged_bytes;
    s.resident_chunks = t->resident_chunks;
    s.published_chunks = t->published_chunks;
    s.demoted_chunks = t->demoted_chunks;
    s.adopted_chunks = t->adopted_chunks;
    s.adopted_bytes = t->adopted_bytes;
    s.shared_hits = t->shared_hits;
    s.evictions = t->evictions;
    s.evicted_by_other = t->evicted_by_other;
    out.push_back(std::move(s));
  }
  return out;
}

uint64_t CacheFabric::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

size_t CacheFabric::resident_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return directory_.size();
}

}  // namespace diesel::tenant
