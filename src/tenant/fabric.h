// Cluster-wide multi-tenant cache fabric (ROADMAP item 1).
//
// DIESEL's TaskCache is task-grained: built at task start, discarded at
// teardown, so two jobs training over the same dataset each pay full
// backend reads. The CacheFabric is the cross-task tier above it — a
// dataset-level chunk directory with refcounted dedup (Hoard-style, see
// PAPERS.md): a chunk resident for one task is served to every task reading
// that dataset, a newly registered task warm-starts by adopting resident
// chunks instead of re-reading the object store, and an orderly teardown
// demotes residency into the fabric instead of dropping it.
//
// Sharing is by core::ChunkBuffer refcount: the directory, every task
// cache, and every outstanding FileSlice hold references on the same
// immutable blob, so slices handed to task A stay valid after task B — the
// task that loaded the bytes — tears down, migrates, or crashes.
//
// Admission/QoS: tenants carry weights and optional hard byte budgets.
// Under capacity pressure the fabric evicts from the tenant with the
// largest bytes/weight ratio (weighted max-min fairness), so a large job
// cannot starve small ones of shared capacity; departed tenants' residue
// stays adoptable but at a reduced weight, making it the preferred victim.
// The same weights govern prefetch bandwidth through
// prefetch::BudgetGovernor: each binding grants its scheduler a weighted
// share of the fabric-wide prefetch pool.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cache/shared_tier.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "prefetch/scheduler.h"

namespace diesel::tenant {

struct TenantOptions {
  /// Display/metrics name; must be unique per fabric.
  std::string name;
  /// Fair-share weight for capacity eviction and prefetch budget splits.
  double weight = 1.0;
  /// Hard cap on this tenant's shared-tier bytes; 0 = bounded only by the
  /// fabric capacity and the weighted fair policy.
  uint64_t budget_bytes = 0;
};

struct FabricOptions {
  /// Shared-tier capacity in bytes; 0 = unbounded.
  uint64_t capacity_bytes = 0;
  /// Fabric-wide prefetch byte pool per node, split across active tenants
  /// by weight through each binding's BudgetGovernor; 0 leaves every
  /// scheduler's own budget untouched.
  uint64_t prefetch_pool_bytes_per_node = 0;
  /// Weight multiplier applied to a departed tenant's residue: still
  /// adoptable (that is the whole point of demotion), but the first to be
  /// evicted when live tenants need the capacity.
  double departed_weight = 0.25;
};

/// Per-tenant accounting row (returned by CacheFabric::Stats, mirrored into
/// the registry as tenant.*{tenant=} series).
struct TenantStats {
  std::string name;
  double weight = 1.0;
  bool active = true;
  uint64_t resident_bytes = 0;    // shared-tier bytes charged to this tenant
  uint64_t resident_chunks = 0;
  uint64_t published_chunks = 0;  // backend loads offered while running
  uint64_t demoted_chunks = 0;    // teardown chunks the fabric retained
  uint64_t adopted_chunks = 0;    // chunks this tenant warm-started
  uint64_t adopted_bytes = 0;
  uint64_t shared_hits = 0;       // adoptions served FROM this tenant's bytes
  uint64_t evictions = 0;         // own entries evicted (any reason)
  uint64_t evicted_by_other = 0;  // ... of which to admit another tenant
};

class CacheFabric;

/// One task's handle on the fabric: implements the cache-facing
/// SharedCacheTier (attach with TaskCache::AttachSharedTier) and the
/// prefetch-facing BudgetGovernor (install with
/// PrefetchScheduler::SetBudgetGovernor). Owned by the fabric; valid until
/// the fabric is destroyed — deregistering only marks the tenant departed.
class TenantBinding : public cache::SharedCacheTier,
                      public prefetch::BudgetGovernor {
 public:
  Result<Adopted> Adopt(sim::VirtualClock& clock, sim::NodeId reader,
                        size_t chunk_index) override;
  void Publish(sim::NodeId home, size_t chunk_index,
               const core::ChunkBuffer& buffer,
               const std::vector<bool>& verified, Nanos now) override;
  uint64_t Demote(sim::NodeId home, size_t chunk_index,
                  const core::ChunkBuffer& buffer,
                  const std::vector<bool>& verified, Nanos now) override;
  void Invalidate(size_t chunk_index,
                  const core::ChunkBuffer& buffer) override;
  uint64_t PrefetchBudgetBytes(uint64_t base) const override;

  const std::string& name() const { return name_; }
  /// Bound dataset. Read under the fabric mutex — revival may rebind it
  /// concurrently with readers.
  std::string dataset() const;

 private:
  friend class CacheFabric;
  TenantBinding(CacheFabric* fabric, size_t slot, std::string name)
      : fabric_(fabric), slot_(slot), name_(std::move(name)) {}

  CacheFabric* fabric_;
  size_t slot_;  // index into the fabric's tenant table
  std::string name_;
};

class CacheFabric {
 public:
  /// `fabric` models the cluster network adoption transfers ride on; it
  /// must outlive this object.
  explicit CacheFabric(net::Fabric& fabric, FabricOptions options = {});

  CacheFabric(const CacheFabric&) = delete;
  CacheFabric& operator=(const CacheFabric&) = delete;

  /// Register a task reading `dataset`. The returned binding stays valid
  /// for the fabric's lifetime. Names must be unique; re-registering a
  /// departed name revives that tenant's accounting row (warm restart),
  /// while a name that is still active is rejected (returns nullptr) — two
  /// live tasks must never share a binding.
  TenantBinding* RegisterTenant(const std::string& dataset,
                                TenantOptions options);

  /// Mark the tenant departed: its residue stays adoptable at
  /// `departed_weight` priority. Idempotent.
  void DeregisterTenant(TenantBinding* binding);

  /// Accounting rows in registration order.
  std::vector<TenantStats> Stats() const;

  uint64_t resident_bytes() const;
  size_t resident_chunks() const;
  const FabricOptions& options() const { return options_; }

 private:
  friend class TenantBinding;

  using Key = std::pair<std::string, size_t>;  // (dataset, chunk index)

  struct Entry {
    core::ChunkBuffer buffer;
    std::vector<bool> verified;
    sim::NodeId home = sim::kInvalidNode;  // adoption transfer source
    size_t owner = 0;                      // tenant charged for the bytes
    uint64_t hits = 0;
  };

  /// Per-tenant labeled registry handles, resolved once at registration so
  /// the hot paths pay relaxed increments only.
  struct Series {
    obs::Gauge* resident_bytes = nullptr;
    obs::Gauge* resident_chunks = nullptr;
    obs::Counter* adopted_chunks = nullptr;
    obs::Counter* shared_hits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* evicted_by_other = nullptr;
  };

  struct TenantRec {
    TenantOptions opts;
    std::string dataset;
    Series series;
    bool active = true;
    uint64_t charged_bytes = 0;
    uint64_t resident_chunks = 0;
    uint64_t published_chunks = 0;
    uint64_t demoted_chunks = 0;
    uint64_t adopted_chunks = 0;
    uint64_t adopted_bytes = 0;
    uint64_t shared_hits = 0;
    uint64_t evictions = 0;
    uint64_t evicted_by_other = 0;
    std::deque<Key> fifo;  // own entries, insertion order (victim scan)
    std::unique_ptr<TenantBinding> binding;
  };

  /// Effective fair-share weight (departed tenants count reduced).
  double EffectiveWeight(const TenantRec& t) const;

  /// Admit `bytes` for tenant `slot` (lock held): enforce the tenant's own
  /// budget (self-eviction), then global capacity (weighted fair eviction
  /// across tenants). False = cannot fit (declined).
  bool AdmitLocked(size_t slot, uint64_t bytes);

  /// Evict `victim`'s oldest entry (lock held). False when it has none.
  bool EvictOldestLocked(size_t victim, size_t for_tenant);

  /// Publish/Demote shared body (takes the lock). Returns bytes retained in
  /// the shared tier (0 = declined/discarded).
  uint64_t Offer(size_t slot, sim::NodeId home, size_t chunk_index,
                 const core::ChunkBuffer& buffer,
                 const std::vector<bool>& verified, bool demote);

  /// Corruption invalidation body: erase the entry iff it still holds
  /// exactly `buffer`'s bytes (identity by shared blob pointer).
  void InvalidateImpl(size_t slot, size_t chunk_index,
                      const core::ChunkBuffer& buffer);

  /// Binding accessor body (the bound dataset is rebound on revival, so
  /// reads go through the fabric mutex).
  std::string DatasetOf(size_t slot) const;

  /// Adoption body: directory lookup under the lock, virtual-time transfer
  /// charge outside it (the handler touches shared simulated devices).
  Result<cache::SharedCacheTier::Adopted> AdoptImpl(size_t slot,
                                                    sim::VirtualClock& clock,
                                                    sim::NodeId reader,
                                                    size_t chunk_index);

  /// BudgetGovernor body: weighted share of the prefetch pool.
  uint64_t GovernedBudget(size_t slot, uint64_t base) const;

  net::Fabric& fabric_;
  FabricOptions options_;
  mutable std::mutex mutex_;
  /// (dataset, chunk) -> shared entry. std::map: deterministic iteration —
  /// eviction order is part of the reproducible simulation.
  std::map<Key, Entry> directory_;
  std::vector<std::unique_ptr<TenantRec>> tenants_;
  uint64_t bytes_ = 0;
};

}  // namespace diesel::tenant
