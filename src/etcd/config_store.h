// ETCD-like configuration service (paper Fig. 2: "the system configurations
// are stored in an ETCD server").
//
// A small, linearizable, versioned key-value store used for control-plane
// state: DIESEL server registration/discovery, dataset directory entries,
// and cluster-wide settings. Every mutation bumps a global revision;
// compare-and-swap enables leader-ish coordination (e.g. electing the
// housekeeping owner for a dataset). Watches are polled: a reader asks for
// "everything since revision R" — sufficient for the discovery pattern the
// paper needs and free of callback re-entrancy.
//
// Ops are charged to the caller's virtual clock through an RPC to the etcd
// node plus a service-device serve (consensus/commit cost).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"
#include "sim/clock.h"
#include "sim/device.h"

namespace diesel::etcd {

struct ConfigEntry {
  std::string key;
  std::string value;
  uint64_t create_revision = 0;
  uint64_t mod_revision = 0;
};

struct ConfigEvent {
  enum class Type { kPut, kDelete };
  Type type = Type::kPut;
  ConfigEntry entry;  // for kDelete: key + last value + revision of delete
};

class ConfigStore {
 public:
  ConfigStore(net::Fabric& fabric, sim::NodeId node);

  sim::NodeId node() const { return node_; }

  /// Current global revision (bumped by every successful mutation).
  uint64_t Revision() const;

  // ---- data plane (charge `clock`) -----------------------------------------

  /// Put; returns the new revision.
  Result<uint64_t> Put(sim::VirtualClock& clock, sim::NodeId client,
                       std::string key, std::string value);

  Result<ConfigEntry> Get(sim::VirtualClock& clock, sim::NodeId client,
                          const std::string& key);

  /// All entries with the prefix, key-ordered.
  Result<std::vector<ConfigEntry>> List(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& prefix);

  /// Delete; returns the new revision. NotFound if absent.
  Result<uint64_t> Delete(sim::VirtualClock& clock, sim::NodeId client,
                          const std::string& key);

  /// Compare-and-swap: succeeds only if the key's current mod_revision
  /// equals `expected_revision` (0 = key must not exist). Returns the new
  /// revision on success, FailedPrecondition on mismatch.
  Result<uint64_t> CompareAndSwap(sim::VirtualClock& clock, sim::NodeId client,
                                  std::string key, std::string value,
                                  uint64_t expected_revision);

  /// Events with revision > `since_revision`, oldest first (polled watch).
  /// The event log is compacted; requesting history older than the
  /// compaction floor returns OutOfRange (caller must re-List).
  Result<std::vector<ConfigEvent>> WatchSince(sim::VirtualClock& clock,
                                              sim::NodeId client,
                                              const std::string& prefix,
                                              uint64_t since_revision);

  /// Drop events up to `revision` (admin, no RPC).
  void Compact(uint64_t revision);

  size_t NumKeys() const;

 private:
  template <typename Fn>
  Status Rpc(sim::VirtualClock& clock, sim::NodeId client, uint64_t bytes,
             Fn&& apply);

  net::Fabric& fabric_;
  sim::NodeId node_;
  sim::Device service_;

  mutable std::mutex mutex_;
  uint64_t revision_ = 0;
  uint64_t compacted_ = 0;
  std::map<std::string, ConfigEntry> data_;
  std::vector<ConfigEvent> log_;  // events (compacted_, revision_]
};

// ---- discovery conventions ---------------------------------------------------

/// Key under which a DIESEL server advertises itself.
std::string ServerKey(uint32_t server_id);
/// Encoded advertisement: node id + capabilities string.
std::string ServerValue(sim::NodeId node, const std::string& info);
Result<sim::NodeId> ParseServerNode(const std::string& value);

/// Key for a dataset directory entry (update timestamp lives in the value
/// so clients can cheaply check snapshot freshness hints).
std::string DatasetDirKey(const std::string& dataset);

}  // namespace diesel::etcd
