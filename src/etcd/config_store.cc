#include "etcd/config_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace diesel::etcd {
namespace {

// Consensus commit + fsync cost per mutation; reads are leader-local.
sim::DeviceSpec EtcdServiceSpec() {
  return {.name = "etcd/svc", .channels = 1, .latency = Micros(120),
          .bytes_per_sec = 1.0e9};
}

constexpr uint64_t kRpcBytes = 128;

}  // namespace

ConfigStore::ConfigStore(net::Fabric& fabric, sim::NodeId node)
    : fabric_(fabric), node_(node), service_(EtcdServiceSpec()) {}

uint64_t ConfigStore::Revision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return revision_;
}

template <typename Fn>
Status ConfigStore::Rpc(sim::VirtualClock& clock, sim::NodeId client,
                        uint64_t bytes, Fn&& apply) {
  return fabric_.Call(clock, client, node_, bytes + kRpcBytes, kRpcBytes,
                      [&](Nanos arrival) {
                        apply();
                        return service_.Serve(arrival, bytes);
                      });
}

Result<uint64_t> ConfigStore::Put(sim::VirtualClock& clock, sim::NodeId client,
                                  std::string key, std::string value) {
  uint64_t rev = 0;
  DIESEL_RETURN_IF_ERROR(
      Rpc(clock, client, key.size() + value.size(), [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        ++revision_;
        auto [it, inserted] = data_.try_emplace(key);
        if (inserted) it->second.create_revision = revision_;
        it->second.key = key;
        it->second.value = std::move(value);
        it->second.mod_revision = revision_;
        log_.push_back({ConfigEvent::Type::kPut, it->second});
        rev = revision_;
      }));
  return rev;
}

Result<ConfigEntry> ConfigStore::Get(sim::VirtualClock& clock,
                                     sim::NodeId client,
                                     const std::string& key) {
  Result<ConfigEntry> result = Status::NotFound("config key: " + key);
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, key.size(), [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = data_.find(key);
    if (it != data_.end()) result = it->second;
  }));
  return result;
}

Result<std::vector<ConfigEntry>> ConfigStore::List(sim::VirtualClock& clock,
                                                   sim::NodeId client,
                                                   const std::string& prefix) {
  std::vector<ConfigEntry> out;
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, prefix.size() + 256, [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out.push_back(it->second);
    }
  }));
  return out;
}

Result<uint64_t> ConfigStore::Delete(sim::VirtualClock& clock,
                                     sim::NodeId client,
                                     const std::string& key) {
  Result<uint64_t> result = Status::NotFound("config key: " + key);
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, key.size(), [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = data_.find(key);
    if (it == data_.end()) return;
    ++revision_;
    ConfigEvent ev{ConfigEvent::Type::kDelete, it->second};
    ev.entry.mod_revision = revision_;
    log_.push_back(std::move(ev));
    data_.erase(it);
    result = revision_;
  }));
  return result;
}

Result<uint64_t> ConfigStore::CompareAndSwap(sim::VirtualClock& clock,
                                             sim::NodeId client,
                                             std::string key,
                                             std::string value,
                                             uint64_t expected_revision) {
  Result<uint64_t> result =
      Status::FailedPrecondition("config CAS: revision mismatch");
  DIESEL_RETURN_IF_ERROR(
      Rpc(clock, client, key.size() + value.size(), [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = data_.find(key);
        uint64_t current = it == data_.end() ? 0 : it->second.mod_revision;
        if (current != expected_revision) return;
        ++revision_;
        if (it == data_.end()) {
          it = data_.try_emplace(key).first;
          it->second.create_revision = revision_;
          it->second.key = key;
        }
        it->second.value = std::move(value);
        it->second.mod_revision = revision_;
        log_.push_back({ConfigEvent::Type::kPut, it->second});
        result = revision_;
      }));
  return result;
}

Result<std::vector<ConfigEvent>> ConfigStore::WatchSince(
    sim::VirtualClock& clock, sim::NodeId client, const std::string& prefix,
    uint64_t since_revision) {
  Result<std::vector<ConfigEvent>> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, prefix.size() + 256, [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    if (since_revision < compacted_) {
      result = Status::OutOfRange(
          "watch history compacted; re-list and resume from the current "
          "revision");
      return;
    }
    std::vector<ConfigEvent> out;
    for (const ConfigEvent& ev : log_) {
      if (ev.entry.mod_revision <= since_revision) continue;
      if (ev.entry.key.compare(0, prefix.size(), prefix) != 0) continue;
      out.push_back(ev);
    }
    result = std::move(out);
  }));
  return result;
}

void ConfigStore::Compact(uint64_t revision) {
  std::lock_guard<std::mutex> lock(mutex_);
  compacted_ = std::max(compacted_, std::min(revision, revision_));
  log_.erase(std::remove_if(log_.begin(), log_.end(),
                            [&](const ConfigEvent& ev) {
                              return ev.entry.mod_revision <= compacted_;
                            }),
             log_.end());
}

size_t ConfigStore::NumKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size();
}

// ---- discovery conventions ---------------------------------------------------

std::string ServerKey(uint32_t server_id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "/diesel/servers/%05u", server_id);
  return buf;
}

std::string ServerValue(sim::NodeId node, const std::string& info) {
  return std::to_string(node) + ";" + info;
}

Result<sim::NodeId> ParseServerNode(const std::string& value) {
  size_t sep = value.find(';');
  if (sep == std::string::npos)
    return Status::Corruption("server advertisement missing separator");
  errno = 0;
  char* end = nullptr;
  unsigned long node = std::strtoul(value.c_str(), &end, 10);
  if (end != value.c_str() + sep || errno != 0)
    return Status::Corruption("server advertisement: bad node id");
  return static_cast<sim::NodeId>(node);
}

std::string DatasetDirKey(const std::string& dataset) {
  return "/diesel/datasets/" + dataset;
}

}  // namespace diesel::etcd
