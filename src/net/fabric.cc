#include "net/fabric.h"

namespace diesel::net {

bool ConnectionTable::Connect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.insert(Canonical(a, b)).second;
}

bool ConnectionTable::Disconnect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.erase(Canonical(a, b)) > 0;
}

bool ConnectionTable::Connected(EndpointId a, EndpointId b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.count(Canonical(a, b)) > 0;
}

size_t ConnectionTable::TotalConnections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.size();
}

size_t ConnectionTable::ConnectionsOf(EndpointId e) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [a, b] : connections_) {
    if (a == e || b == e) ++n;
  }
  return n;
}

void ConnectionTable::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.clear();
}

Status Fabric::Call(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t req_bytes, uint64_t resp_bytes,
                    const std::function<Nanos(Nanos)>& handler) {
  if (!cluster_.node(src).up())
    return Status::Unavailable("source node down: " + cluster_.node(src).name());
  if (!cluster_.node(dst).up())
    return Status::Unavailable("target node down: " + cluster_.node(dst).name());

  rpcs_.fetch_add(1, std::memory_order_relaxed);

  if (src == dst) {
    // Loopback: no NIC traversal, just serialization overhead + handler.
    Nanos arrival = clock.now() + sim::kRpcCpuOverhead;
    Nanos done = handler(arrival);
    clock.AdvanceTo(done + sim::kRpcCpuOverhead);
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);

  Nanos t = s.nic().Serve(clock.now(), req_bytes, sim::kRpcCpuOverhead);
  t += wire_latency_;
  t = d.nic().Serve(t, req_bytes, sim::kRpcCpuOverhead);
  Nanos done = handler(t);
  t = d.nic().Serve(done, resp_bytes, sim::kRpcCpuOverhead);
  t += wire_latency_;
  t = s.nic().Serve(t, resp_bytes, sim::kRpcCpuOverhead);
  clock.AdvanceTo(t);
  return Status::Ok();
}

Status Fabric::Send(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t bytes, const std::function<void(Nanos)>& deliver) {
  if (!cluster_.node(src).up())
    return Status::Unavailable("source node down");
  if (!cluster_.node(dst).up())
    return Status::Unavailable("target node down");

  rpcs_.fetch_add(1, std::memory_order_relaxed);

  if (src == dst) {
    deliver(clock.now() + sim::kRpcCpuOverhead);
    clock.Advance(sim::kRpcCpuOverhead);
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  Nanos t = s.nic().Serve(clock.now(), bytes, sim::kRpcCpuOverhead);
  clock.AdvanceTo(t);  // sender is free once bytes are on the wire
  t += wire_latency_;
  t = d.nic().Serve(t, bytes, sim::kRpcCpuOverhead);
  deliver(t);
  return Status::Ok();
}

}  // namespace diesel::net
