#include "net/fabric.h"

#include "net/fault_injector.h"

namespace diesel::net {

bool ConnectionTable::Connect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.insert(Canonical(a, b)).second;
}

bool ConnectionTable::Disconnect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.erase(Canonical(a, b)) > 0;
}

bool ConnectionTable::Connected(EndpointId a, EndpointId b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.count(Canonical(a, b)) > 0;
}

size_t ConnectionTable::TotalConnections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.size();
}

size_t ConnectionTable::ConnectionsOf(EndpointId e) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [a, b] : connections_) {
    if (a == e || b == e) ++n;
  }
  return n;
}

size_t ConnectionTable::DisconnectAll(EndpointId e) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first == e || it->second == e) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t ConnectionTable::DisconnectNode(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first.node == node || it->second.node == node) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void ConnectionTable::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.clear();
}

bool Fabric::NodeAvailable(sim::NodeId node, Nanos now) const {
  if (!cluster_.node(node).up()) return false;
  if (injector_ != nullptr && injector_->NodeDown(node, now)) return false;
  return true;
}

Status Fabric::ApplyInjectedFaults(sim::VirtualClock& clock, sim::NodeId src,
                                   sim::NodeId dst, Nanos* extra_latency) {
  *extra_latency = 0;
  if (injector_ == nullptr) return Status::Ok();

  Nanos now = clock.now();
  injector_->FireFlaps(now, [this](sim::NodeId n) {
    connections_.DisconnectNode(n);
  });

  if (injector_->NodeDown(src, now) || injector_->NodeDown(dst, now)) {
    // Flapped endpoint: the caller pays the connect timeout discovering it.
    injector_->CountDownNodeRejection();
    clock.Advance(injector_->plan().fault_detect_timeout);
    sim::NodeId down = injector_->NodeDown(src, now) ? src : dst;
    return Status::Unavailable("injected flap: node down: " +
                               cluster_.node(down).name());
  }
  if (src != dst && injector_->ShouldDropRpc(src, dst, now)) {
    clock.Advance(injector_->plan().fault_detect_timeout);
    return Status::Unavailable("injected rpc drop: " +
                               cluster_.node(src).name() + " -> " +
                               cluster_.node(dst).name());
  }
  *extra_latency = injector_->ExtraLatency(now);
  return Status::Ok();
}

Status Fabric::Call(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t req_bytes, uint64_t resp_bytes,
                    const std::function<Nanos(Nanos)>& handler) {
  if (!cluster_.node(src).up())
    return Status::Unavailable("source node down: " + cluster_.node(src).name());
  if (!cluster_.node(dst).up())
    return Status::Unavailable("target node down: " + cluster_.node(dst).name());
  Nanos spike = 0;
  DIESEL_RETURN_IF_ERROR(ApplyInjectedFaults(clock, src, dst, &spike));

  rpcs_.fetch_add(1, std::memory_order_relaxed);

  if (src == dst) {
    // Loopback: no NIC traversal, just serialization overhead + handler.
    Nanos arrival = clock.now() + sim::kRpcCpuOverhead;
    Nanos done = handler(arrival);
    clock.AdvanceTo(done + sim::kRpcCpuOverhead);
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  Nanos wire = wire_latency_ + spike;

  Nanos t = s.nic().Serve(clock.now(), req_bytes, sim::kRpcCpuOverhead);
  t += wire;
  t = d.nic().Serve(t, req_bytes, sim::kRpcCpuOverhead);
  Nanos done = handler(t);
  t = d.nic().Serve(done, resp_bytes, sim::kRpcCpuOverhead);
  t += wire;
  t = s.nic().Serve(t, resp_bytes, sim::kRpcCpuOverhead);
  clock.AdvanceTo(t);
  return Status::Ok();
}

Status Fabric::Send(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t bytes, const std::function<void(Nanos)>& deliver) {
  if (!cluster_.node(src).up())
    return Status::Unavailable("source node down");
  if (!cluster_.node(dst).up())
    return Status::Unavailable("target node down");
  Nanos spike = 0;
  DIESEL_RETURN_IF_ERROR(ApplyInjectedFaults(clock, src, dst, &spike));

  rpcs_.fetch_add(1, std::memory_order_relaxed);

  if (src == dst) {
    deliver(clock.now() + sim::kRpcCpuOverhead);
    clock.Advance(sim::kRpcCpuOverhead);
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  Nanos t = s.nic().Serve(clock.now(), bytes, sim::kRpcCpuOverhead);
  clock.AdvanceTo(t);  // sender is free once bytes are on the wire
  t += wire_latency_ + spike;
  t = d.nic().Serve(t, bytes, sim::kRpcCpuOverhead);
  deliver(t);
  return Status::Ok();
}

}  // namespace diesel::net
