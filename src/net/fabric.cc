#include "net/fabric.h"

#include "net/fault_injector.h"
#include "obs/flight_recorder.h"

namespace diesel::net {

bool ConnectionTable::Connect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.insert(Canonical(a, b)).second;
}

bool ConnectionTable::Disconnect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.erase(Canonical(a, b)) > 0;
}

bool ConnectionTable::Connected(EndpointId a, EndpointId b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.count(Canonical(a, b)) > 0;
}

size_t ConnectionTable::TotalConnections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.size();
}

size_t ConnectionTable::ConnectionsOf(EndpointId e) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [a, b] : connections_) {
    if (a == e || b == e) ++n;
  }
  return n;
}

size_t ConnectionTable::DisconnectAll(EndpointId e) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first == e || it->second == e) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t ConnectionTable::DisconnectNode(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first.node == node || it->second.node == node) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void ConnectionTable::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.clear();
}

bool Fabric::NodeAvailable(sim::NodeId node, Nanos now) const {
  if (!cluster_.node(node).up()) return false;
  if (injector_ != nullptr && injector_->NodeDown(node, now)) return false;
  return true;
}

Fabric::LinkMetrics& Fabric::LinkMetricsFor(sim::NodeId src, sim::NodeId dst) {
  uint64_t key = (static_cast<uint64_t>(src) << 32) | dst;
  std::lock_guard<std::mutex> lock(link_metrics_mutex_);
  auto it = link_metrics_.find(key);
  if (it == link_metrics_.end()) {
    obs::Labels link{{"link", "n" + std::to_string(src) + "->n" +
                                  std::to_string(dst)}};
    obs::MetricsRegistry& reg = obs::Metrics();
    LinkMetrics lm;
    lm.calls = &reg.GetCounter("net.rpc.calls", link);
    lm.sends = &reg.GetCounter("net.rpc.sends", link);
    lm.req_bytes = &reg.GetCounter("net.rpc.req_bytes", link);
    lm.resp_bytes = &reg.GetCounter("net.rpc.resp_bytes", link);
    lm.drops = &reg.GetCounter("net.rpc.drops", link);
    lm.flap_rejects = &reg.GetCounter("net.rpc.flap_rejects", link);
    lm.latency_ns = &reg.GetHistogram("net.rpc.latency_ns", link);
    lm.batch_calls = &reg.GetCounter("net.batch.calls", link);
    lm.batch_subrequests = &reg.GetCounter("net.batch.subrequests", link);
    lm.batch_size = &reg.GetHistogram("net.batch.size", link);
    obs::Labels scoped = link;
    scoped.emplace_back("node", "n" + std::to_string(src));
    lm.busy_ns = &reg.GetCounter("net.link.busy_ns", scoped);
    lm.queue_wait_ns = &reg.GetHistogram("net.link.queue_wait_ns", scoped);
    lm.channels = &reg.GetGauge("net.link.channels", scoped);
    lm.channels->Set(
        static_cast<double>(cluster_.node(src).nic().spec().channels +
                            cluster_.node(dst).nic().spec().channels));
    it = link_metrics_.emplace(key, lm).first;
  }
  return it->second;
}

std::string Fabric::SpanName(const char* kind, sim::NodeId src,
                             sim::NodeId dst) {
  return std::string(kind) + ":" + cluster_.node(src).name() + "->" +
         cluster_.node(dst).name();
}

obs::ScopedSpan Fabric::RpcSpan(const char* kind, sim::VirtualClock& clock,
                                sim::NodeId src, sim::NodeId dst) {
  // Guaranteed copy elision: both branches construct the span in place.
  if (tracer_ == nullptr) return obs::ScopedSpan();
  return obs::ScopedSpan(tracer_, SpanName(kind, src, dst), clock, src);
}

Status Fabric::ApplyInjectedFaults(sim::VirtualClock& clock, sim::NodeId src,
                                   sim::NodeId dst, Nanos* extra_latency,
                                   obs::ScopedSpan& span, LinkMetrics& link) {
  *extra_latency = 0;
  if (injector_ == nullptr) return Status::Ok();

  Nanos now = clock.now();
  injector_->FireFlaps(now, [this](sim::NodeId n) {
    connections_.DisconnectNode(n);
  });

  if (injector_->NodeDown(src, now) || injector_->NodeDown(dst, now)) {
    // Flapped endpoint: the caller pays the connect timeout discovering it.
    injector_->CountDownNodeRejection();
    link.flap_rejects->Inc();
    clock.Advance(injector_->plan().fault_detect_timeout);
    sim::NodeId down = injector_->NodeDown(src, now) ? src : dst;
    span.Note("fault.flap node=" + cluster_.node(down).name());
    obs::Flight().Record(obs::FlightEventKind::kFault, now,
                         "flap: node down: " + cluster_.node(down).name(),
                         span.id());
    return Status::Unavailable("injected flap: node down: " +
                               cluster_.node(down).name());
  }
  if (src != dst && injector_->ShouldDropRpc(src, dst, now)) {
    link.drops->Inc();
    clock.Advance(injector_->plan().fault_detect_timeout);
    span.Note("fault.drop");
    obs::Flight().Record(obs::FlightEventKind::kFault, now,
                         "rpc drop: " + cluster_.node(src).name() + " -> " +
                             cluster_.node(dst).name(),
                         span.id());
    return Status::Unavailable("injected rpc drop: " +
                               cluster_.node(src).name() + " -> " +
                               cluster_.node(dst).name());
  }
  *extra_latency = injector_->ExtraLatency(now);
  if (*extra_latency > 0) {
    span.Note("fault.latency_spike extra=" + std::to_string(*extra_latency) +
              "ns");
  }
  return Status::Ok();
}

Status Fabric::CallImpl(sim::VirtualClock& clock, sim::NodeId src,
                        sim::NodeId dst, size_t k, uint64_t req_bytes,
                        uint64_t resp_bytes,
                        const std::function<Nanos(Nanos)>& handler) {
  LinkMetrics& link = LinkMetricsFor(src, dst);
  obs::ScopedSpan span = RpcSpan(k > 1 ? "batch" : "rpc", clock, src, dst);
  if (k > 1) span.Note("batch k=" + std::to_string(k));
  if (!cluster_.node(src).up()) {
    span.Note("unavailable: source down");
    return Status::Unavailable("source node down: " + cluster_.node(src).name());
  }
  if (!cluster_.node(dst).up()) {
    span.Note("unavailable: target down");
    return Status::Unavailable("target node down: " + cluster_.node(dst).name());
  }
  Nanos spike = 0;
  DIESEL_RETURN_IF_ERROR(
      ApplyInjectedFaults(clock, src, dst, &spike, span, link));

  rpcs_.fetch_add(1, std::memory_order_relaxed);
  link.calls->Inc();
  link.req_bytes->Inc(req_bytes);
  link.resp_bytes->Inc(resp_bytes);
  if (k > 1) {
    link.batch_calls->Inc();
    link.batch_subrequests->Inc(k);
    link.batch_size->Observe(static_cast<double>(k));
  }
  const Nanos issued = clock.now();

  // The fixed per-RPC CPU overhead is paid once per endpoint traversal; each
  // extra coalesced sub-request only adds its marginal marshalling cost.
  const Nanos setup = sim::kRpcCpuOverhead +
                      static_cast<Nanos>(k - 1) * sim::kRpcBatchSubRequestCost;

  if (src == dst) {
    // Loopback: no NIC traversal, just serialization overhead + handler.
    Nanos arrival = clock.now() + setup;
    Nanos done = handler(arrival);
    clock.AdvanceTo(done + setup);
    link.latency_ns->Observe(static_cast<double>(clock.now() - issued));
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  Nanos wire = wire_latency_ + spike;

  // A batched leg streams: the endpoint marshals and transmits sub-requests
  // one after another, so its NIC time is k chained small serves (totalling
  // `setup` + the transfer) rather than one monolithic slot. Identical cost
  // on an idle NIC, but the pieces can backfill short gaps in a busy
  // timeline where a contiguous (k-1)-subrequest slot would have to wait.
  // `subs`, when non-null, receives each sub-request's serve completion time.
  auto leg = [&](sim::SimNode& node, Nanos at, uint64_t bytes,
                 std::vector<Nanos>* subs = nullptr) -> Nanos {
    sim::ServeStats st;
    if (k == 1) {
      Nanos end = node.nic().Serve(at, bytes, setup, &st);
      link.busy_ns->Inc(static_cast<uint64_t>(st.service));
      link.queue_wait_ns->Observe(static_cast<double>(st.queue_wait));
      return end;
    }
    uint64_t per = bytes / k;
    Nanos t = node.nic().Serve(at, per + bytes % k, sim::kRpcCpuOverhead, &st);
    Nanos leg_busy = st.service;
    // The link queued only until the first sub-request started streaming;
    // later pieces chain off earlier completions by construction.
    link.queue_wait_ns->Observe(static_cast<double>(st.queue_wait));
    if (subs != nullptr) subs->push_back(t);
    for (size_t i = 1; i < k; ++i) {
      t = node.nic().Serve(t, per, sim::kRpcBatchSubRequestCost, &st);
      leg_busy += st.service;
      if (subs != nullptr) subs->push_back(t);
    }
    link.busy_ns->Inc(static_cast<uint64_t>(leg_busy));
    return t;
  };

  // When tracing a batch, the sender's request leg materializes each
  // coalesced sub-request as a child span under the batch span, so the trace
  // shows the streamed marshal windows rather than one opaque slot.
  std::vector<Nanos> sub_done;
  Nanos t = leg(s, clock.now(), req_bytes,
                span.active() && k > 1 ? &sub_done : nullptr);
  if (!sub_done.empty()) {
    Nanos prev = issued;
    for (size_t i = 0; i < sub_done.size(); ++i) {
      uint64_t child = tracer_->Begin("batch.sub", prev, src, span.id());
      tracer_->Note(child, prev,
                    "sub=" + std::to_string(i) + "/" + std::to_string(k));
      tracer_->End(child, sub_done[i]);
      prev = sub_done[i];
    }
  }
  t += wire;
  t = leg(d, t, req_bytes);
  Nanos done = handler(t);
  t = leg(d, done, resp_bytes);
  t += wire;
  t = leg(s, t, resp_bytes);
  clock.AdvanceTo(t);
  link.latency_ns->Observe(static_cast<double>(clock.now() - issued));
  return Status::Ok();
}

Status Fabric::Call(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t req_bytes, uint64_t resp_bytes,
                    const std::function<Nanos(Nanos)>& handler) {
  return CallImpl(clock, src, dst, /*k=*/1, req_bytes, resp_bytes, handler);
}

Status Fabric::CallBatch(sim::VirtualClock& clock, sim::NodeId src,
                         sim::NodeId dst, size_t k, uint64_t req_bytes,
                         uint64_t resp_bytes,
                         const std::function<Nanos(Nanos)>& handler) {
  if (k == 0) return Status::InvalidArgument("CallBatch: empty batch");
  return CallImpl(clock, src, dst, k, req_bytes, resp_bytes, handler);
}

Status Fabric::Send(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t bytes, const std::function<void(Nanos)>& deliver) {
  LinkMetrics& link = LinkMetricsFor(src, dst);
  obs::ScopedSpan span = RpcSpan("send", clock, src, dst);
  if (!cluster_.node(src).up()) {
    span.Note("unavailable: source down");
    return Status::Unavailable("source node down");
  }
  if (!cluster_.node(dst).up()) {
    span.Note("unavailable: target down");
    return Status::Unavailable("target node down");
  }
  Nanos spike = 0;
  DIESEL_RETURN_IF_ERROR(
      ApplyInjectedFaults(clock, src, dst, &spike, span, link));

  rpcs_.fetch_add(1, std::memory_order_relaxed);
  link.sends->Inc();
  link.req_bytes->Inc(bytes);

  if (src == dst) {
    deliver(clock.now() + sim::kRpcCpuOverhead);
    clock.Advance(sim::kRpcCpuOverhead);
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  sim::ServeStats st;
  Nanos t = s.nic().Serve(clock.now(), bytes, sim::kRpcCpuOverhead, &st);
  link.busy_ns->Inc(static_cast<uint64_t>(st.service));
  link.queue_wait_ns->Observe(static_cast<double>(st.queue_wait));
  clock.AdvanceTo(t);  // sender is free once bytes are on the wire
  t += wire_latency_ + spike;
  t = d.nic().Serve(t, bytes, sim::kRpcCpuOverhead, &st);
  link.busy_ns->Inc(static_cast<uint64_t>(st.service));
  deliver(t);
  return Status::Ok();
}

}  // namespace diesel::net
