#include "net/fabric.h"

#include "net/fault_injector.h"

namespace diesel::net {

bool ConnectionTable::Connect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.insert(Canonical(a, b)).second;
}

bool ConnectionTable::Disconnect(EndpointId a, EndpointId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.erase(Canonical(a, b)) > 0;
}

bool ConnectionTable::Connected(EndpointId a, EndpointId b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.count(Canonical(a, b)) > 0;
}

size_t ConnectionTable::TotalConnections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.size();
}

size_t ConnectionTable::ConnectionsOf(EndpointId e) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [a, b] : connections_) {
    if (a == e || b == e) ++n;
  }
  return n;
}

size_t ConnectionTable::DisconnectAll(EndpointId e) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first == e || it->second == e) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t ConnectionTable::DisconnectNode(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first.node == node || it->second.node == node) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void ConnectionTable::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.clear();
}

bool Fabric::NodeAvailable(sim::NodeId node, Nanos now) const {
  if (!cluster_.node(node).up()) return false;
  if (injector_ != nullptr && injector_->NodeDown(node, now)) return false;
  return true;
}

Fabric::LinkMetrics& Fabric::LinkMetricsFor(sim::NodeId src, sim::NodeId dst) {
  uint64_t key = (static_cast<uint64_t>(src) << 32) | dst;
  std::lock_guard<std::mutex> lock(link_metrics_mutex_);
  auto it = link_metrics_.find(key);
  if (it == link_metrics_.end()) {
    obs::Labels link{{"link", "n" + std::to_string(src) + "->n" +
                                  std::to_string(dst)}};
    obs::MetricsRegistry& reg = obs::Metrics();
    LinkMetrics lm;
    lm.calls = &reg.GetCounter("net.rpc.calls", link);
    lm.sends = &reg.GetCounter("net.rpc.sends", link);
    lm.req_bytes = &reg.GetCounter("net.rpc.req_bytes", link);
    lm.resp_bytes = &reg.GetCounter("net.rpc.resp_bytes", link);
    lm.drops = &reg.GetCounter("net.rpc.drops", link);
    lm.flap_rejects = &reg.GetCounter("net.rpc.flap_rejects", link);
    lm.latency_ns = &reg.GetHistogram("net.rpc.latency_ns", link);
    it = link_metrics_.emplace(key, lm).first;
  }
  return it->second;
}

std::string Fabric::SpanName(const char* kind, sim::NodeId src,
                             sim::NodeId dst) {
  return std::string(kind) + ":" + cluster_.node(src).name() + "->" +
         cluster_.node(dst).name();
}

Status Fabric::ApplyInjectedFaults(sim::VirtualClock& clock, sim::NodeId src,
                                   sim::NodeId dst, Nanos* extra_latency,
                                   obs::ScopedSpan& span, LinkMetrics& link) {
  *extra_latency = 0;
  if (injector_ == nullptr) return Status::Ok();

  Nanos now = clock.now();
  injector_->FireFlaps(now, [this](sim::NodeId n) {
    connections_.DisconnectNode(n);
  });

  if (injector_->NodeDown(src, now) || injector_->NodeDown(dst, now)) {
    // Flapped endpoint: the caller pays the connect timeout discovering it.
    injector_->CountDownNodeRejection();
    link.flap_rejects->Inc();
    clock.Advance(injector_->plan().fault_detect_timeout);
    sim::NodeId down = injector_->NodeDown(src, now) ? src : dst;
    span.Note("fault.flap node=" + cluster_.node(down).name());
    return Status::Unavailable("injected flap: node down: " +
                               cluster_.node(down).name());
  }
  if (src != dst && injector_->ShouldDropRpc(src, dst, now)) {
    link.drops->Inc();
    clock.Advance(injector_->plan().fault_detect_timeout);
    span.Note("fault.drop");
    return Status::Unavailable("injected rpc drop: " +
                               cluster_.node(src).name() + " -> " +
                               cluster_.node(dst).name());
  }
  *extra_latency = injector_->ExtraLatency(now);
  if (*extra_latency > 0) {
    span.Note("fault.latency_spike extra=" + std::to_string(*extra_latency) +
              "ns");
  }
  return Status::Ok();
}

Status Fabric::Call(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t req_bytes, uint64_t resp_bytes,
                    const std::function<Nanos(Nanos)>& handler) {
  LinkMetrics& link = LinkMetricsFor(src, dst);
  obs::ScopedSpan span(tracer_,
                       tracer_ ? SpanName("rpc", src, dst) : std::string(),
                       clock, src);
  if (!cluster_.node(src).up()) {
    span.Note("unavailable: source down");
    return Status::Unavailable("source node down: " + cluster_.node(src).name());
  }
  if (!cluster_.node(dst).up()) {
    span.Note("unavailable: target down");
    return Status::Unavailable("target node down: " + cluster_.node(dst).name());
  }
  Nanos spike = 0;
  DIESEL_RETURN_IF_ERROR(
      ApplyInjectedFaults(clock, src, dst, &spike, span, link));

  rpcs_.fetch_add(1, std::memory_order_relaxed);
  link.calls->Inc();
  link.req_bytes->Inc(req_bytes);
  link.resp_bytes->Inc(resp_bytes);
  const Nanos issued = clock.now();

  if (src == dst) {
    // Loopback: no NIC traversal, just serialization overhead + handler.
    Nanos arrival = clock.now() + sim::kRpcCpuOverhead;
    Nanos done = handler(arrival);
    clock.AdvanceTo(done + sim::kRpcCpuOverhead);
    link.latency_ns->Observe(static_cast<double>(clock.now() - issued));
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  Nanos wire = wire_latency_ + spike;

  Nanos t = s.nic().Serve(clock.now(), req_bytes, sim::kRpcCpuOverhead);
  t += wire;
  t = d.nic().Serve(t, req_bytes, sim::kRpcCpuOverhead);
  Nanos done = handler(t);
  t = d.nic().Serve(done, resp_bytes, sim::kRpcCpuOverhead);
  t += wire;
  t = s.nic().Serve(t, resp_bytes, sim::kRpcCpuOverhead);
  clock.AdvanceTo(t);
  link.latency_ns->Observe(static_cast<double>(clock.now() - issued));
  return Status::Ok();
}

Status Fabric::Send(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                    uint64_t bytes, const std::function<void(Nanos)>& deliver) {
  LinkMetrics& link = LinkMetricsFor(src, dst);
  obs::ScopedSpan span(tracer_,
                       tracer_ ? SpanName("send", src, dst) : std::string(),
                       clock, src);
  if (!cluster_.node(src).up()) {
    span.Note("unavailable: source down");
    return Status::Unavailable("source node down");
  }
  if (!cluster_.node(dst).up()) {
    span.Note("unavailable: target down");
    return Status::Unavailable("target node down");
  }
  Nanos spike = 0;
  DIESEL_RETURN_IF_ERROR(
      ApplyInjectedFaults(clock, src, dst, &spike, span, link));

  rpcs_.fetch_add(1, std::memory_order_relaxed);
  link.sends->Inc();
  link.req_bytes->Inc(bytes);

  if (src == dst) {
    deliver(clock.now() + sim::kRpcCpuOverhead);
    clock.Advance(sim::kRpcCpuOverhead);
    return Status::Ok();
  }

  sim::SimNode& s = cluster_.node(src);
  sim::SimNode& d = cluster_.node(dst);
  Nanos t = s.nic().Serve(clock.now(), bytes, sim::kRpcCpuOverhead);
  clock.AdvanceTo(t);  // sender is free once bytes are on the wire
  t += wire_latency_ + spike;
  t = d.nic().Serve(t, bytes, sim::kRpcCpuOverhead);
  deliver(t);
  return Status::Ok();
}

}  // namespace diesel::net
