// RPC fabric over the simulated network.
//
// Models one request/response exchange as: sender NIC (request bytes) ->
// wire latency -> receiver NIC -> per-RPC CPU overhead -> user handler ->
// receiver NIC (response bytes) -> wire -> sender NIC. Same-node calls pay
// only a loopback cost. This stands in for the Apache Thrift layer the
// paper uses between clients, peers and servers.
//
// Connection accounting: endpoints explicitly open connections; the table
// exposes counts so tests can assert the task-grained cache's p x (n-1)
// topology versus the full-mesh n x (n-1).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/calibration.h"
#include "sim/clock.h"
#include "sim/node.h"

namespace diesel::net {

/// Globally unique endpoint identity: (node, local index).
struct EndpointId {
  sim::NodeId node = sim::kInvalidNode;
  uint32_t index = 0;

  friend auto operator<=>(const EndpointId&, const EndpointId&) = default;
};

/// Tracks open point-to-point connections (unordered pairs of endpoints).
class ConnectionTable {
 public:
  /// Open (idempotent). Returns true if newly opened.
  bool Connect(EndpointId a, EndpointId b);
  bool Disconnect(EndpointId a, EndpointId b);
  bool Connected(EndpointId a, EndpointId b) const;
  size_t TotalConnections() const;
  /// Connections with `e` as either side.
  size_t ConnectionsOf(EndpointId e) const;
  /// Drop every connection with `e` as either side (endpoint failed).
  /// Returns the number of connections removed.
  size_t DisconnectAll(EndpointId e);
  /// Drop every connection touching any endpoint on `node` (node failed) so
  /// topology counts stay truthful after failures. Returns removals.
  size_t DisconnectNode(sim::NodeId node);
  void Clear();

 private:
  using Pair = std::pair<EndpointId, EndpointId>;
  static Pair Canonical(EndpointId a, EndpointId b) {
    return a < b ? Pair{a, b} : Pair{b, a};
  }

  mutable std::mutex mutex_;
  std::set<Pair> connections_;
};

class FaultInjector;

class Fabric {
 public:
  explicit Fabric(sim::Cluster& cluster, Nanos wire_latency = sim::kWireLatency)
      : cluster_(cluster), wire_latency_(wire_latency) {}

  sim::Cluster& cluster() { return cluster_; }
  ConnectionTable& connections() { return connections_; }

  /// Attach a deterministic fault-injection plan (nullptr detaches). With no
  /// injector attached, the fabric behaves exactly as before — the fault
  /// plane is pay-for-what-you-use.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  /// Attach a span tracer (nullptr detaches). Every Call/Send then records
  /// a span; handler-side spans nest under it via the thread-local context,
  /// and injected faults surface as span annotations. Like the injector,
  /// detached tracing costs nothing.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  /// Is `node` able to serve at virtual time `now`? Combines the cluster's
  /// availability flag with any active injected flap window. Callers use
  /// this to skip/fail over across down nodes before paying an RPC.
  bool NodeAvailable(sim::NodeId node, Nanos now) const;

  /// One RPC round trip. `handler(arrival) -> Nanos` runs the server-side
  /// work and returns its completion time (it may charge further devices).
  /// Fails Unavailable if either node is down. Advances `clock` to the time
  /// the response has fully arrived back at the caller.
  Status Call(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
              uint64_t req_bytes, uint64_t resp_bytes,
              const std::function<Nanos(Nanos)>& handler);

  /// Batched RPC round trip carrying `k` coalesced sub-requests in ONE wire
  /// exchange. `req_bytes`/`resp_bytes` are the summed payloads of every
  /// sub-request; the per-RPC CPU overhead is paid once per endpoint plus a
  /// small marginal marshalling cost per extra sub-request
  /// (sim::kRpcBatchSubRequestCost), so a k-way multi-get amortizes the
  /// fixed RPC cost across all k files. Counts as ONE issued RPC. Fault
  /// injection gates the whole exchange: a dropped batch fails every
  /// sub-request at once, exactly like k dropped singles would — callers
  /// retry or degrade per sub-request on failure. `k == 0` is invalid;
  /// `k == 1` degenerates to Call().
  Status CallBatch(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                   size_t k, uint64_t req_bytes, uint64_t resp_bytes,
                   const std::function<Nanos(Nanos)>& handler);

  /// Fire-and-forget one-way message (used for background cache pushes).
  Status Send(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
              uint64_t bytes, const std::function<void(Nanos)>& deliver);

  uint64_t rpcs_issued() const { return rpcs_.load(std::memory_order_relaxed); }

 private:
  /// Per-link registry handles, resolved once per (src, dst) pair so the
  /// per-RPC cost is a few relaxed atomic increments.
  struct LinkMetrics {
    obs::Counter* calls;
    obs::Counter* sends;
    obs::Counter* req_bytes;
    obs::Counter* resp_bytes;
    obs::Counter* drops;
    obs::Counter* flap_rejects;
    obs::Histo* latency_ns;
    obs::Counter* batch_calls;        // net.batch.calls
    obs::Counter* batch_subrequests;  // net.batch.subrequests
    obs::Histo* batch_size;           // net.batch.size
    // Link occupancy telemetry: every NIC leg of this link's exchanges adds
    // its service time to busy_ns and its queue wait to queue_wait_ns, so
    // obs::ClusterView can derive net.link.util. Because the legs run on
    // both endpoints' multi-channel NICs, the link's parallel capacity is
    // published as a channels gauge (2 x NIC channels) and the view divides
    // busy time by it — without that, a moderately loaded link clamps to
    // 100% and out-ranks genuinely saturated devices in hotspot reports.
    // Labeled with node=n<src> so link load rolls up to the sending node.
    obs::Counter* busy_ns;       // net.link.busy_ns
    obs::Histo* queue_wait_ns;   // net.link.queue_wait_ns
    obs::Gauge* channels;        // net.link.channels
  };

  /// Injector gate shared by Call/Send: fires due flap teardowns, refuses
  /// calls touching flapped nodes, rolls drop dice, and returns the extra
  /// wire latency for this exchange. OK status means the call may proceed.
  /// Fault hits are annotated onto `span` and counted on `link`.
  Status ApplyInjectedFaults(sim::VirtualClock& clock, sim::NodeId src,
                             sim::NodeId dst, Nanos* extra_latency,
                             obs::ScopedSpan& span, LinkMetrics& link);

  LinkMetrics& LinkMetricsFor(sim::NodeId src, sim::NodeId dst);
  std::string SpanName(const char* kind, sim::NodeId src, sim::NodeId dst);

  /// Span for one RPC exchange. With no tracer attached this constructs an
  /// inert span and — critically — never calls SpanName, so the untraced
  /// fast path allocates no string and touches no node names.
  obs::ScopedSpan RpcSpan(const char* kind, sim::VirtualClock& clock,
                          sim::NodeId src, sim::NodeId dst);

  /// Shared body of Call/CallBatch (k == 1 for a plain call).
  Status CallImpl(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
                  size_t k, uint64_t req_bytes, uint64_t resp_bytes,
                  const std::function<Nanos(Nanos)>& handler);

  sim::Cluster& cluster_;
  Nanos wire_latency_;
  ConnectionTable connections_;
  FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::atomic<uint64_t> rpcs_{0};
  std::mutex link_metrics_mutex_;
  std::unordered_map<uint64_t, LinkMetrics> link_metrics_;
};

}  // namespace diesel::net
