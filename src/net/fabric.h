// RPC fabric over the simulated network.
//
// Models one request/response exchange as: sender NIC (request bytes) ->
// wire latency -> receiver NIC -> per-RPC CPU overhead -> user handler ->
// receiver NIC (response bytes) -> wire -> sender NIC. Same-node calls pay
// only a loopback cost. This stands in for the Apache Thrift layer the
// paper uses between clients, peers and servers.
//
// Connection accounting: endpoints explicitly open connections; the table
// exposes counts so tests can assert the task-grained cache's p x (n-1)
// topology versus the full-mesh n x (n-1).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <utility>

#include "common/status.h"
#include "common/units.h"
#include "sim/calibration.h"
#include "sim/clock.h"
#include "sim/node.h"

namespace diesel::net {

/// Globally unique endpoint identity: (node, local index).
struct EndpointId {
  sim::NodeId node = sim::kInvalidNode;
  uint32_t index = 0;

  friend auto operator<=>(const EndpointId&, const EndpointId&) = default;
};

/// Tracks open point-to-point connections (unordered pairs of endpoints).
class ConnectionTable {
 public:
  /// Open (idempotent). Returns true if newly opened.
  bool Connect(EndpointId a, EndpointId b);
  bool Disconnect(EndpointId a, EndpointId b);
  bool Connected(EndpointId a, EndpointId b) const;
  size_t TotalConnections() const;
  /// Connections with `e` as either side.
  size_t ConnectionsOf(EndpointId e) const;
  void Clear();

 private:
  using Pair = std::pair<EndpointId, EndpointId>;
  static Pair Canonical(EndpointId a, EndpointId b) {
    return a < b ? Pair{a, b} : Pair{b, a};
  }

  mutable std::mutex mutex_;
  std::set<Pair> connections_;
};

class Fabric {
 public:
  explicit Fabric(sim::Cluster& cluster, Nanos wire_latency = sim::kWireLatency)
      : cluster_(cluster), wire_latency_(wire_latency) {}

  sim::Cluster& cluster() { return cluster_; }
  ConnectionTable& connections() { return connections_; }

  /// One RPC round trip. `handler(arrival) -> Nanos` runs the server-side
  /// work and returns its completion time (it may charge further devices).
  /// Fails Unavailable if either node is down. Advances `clock` to the time
  /// the response has fully arrived back at the caller.
  Status Call(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
              uint64_t req_bytes, uint64_t resp_bytes,
              const std::function<Nanos(Nanos)>& handler);

  /// Fire-and-forget one-way message (used for background cache pushes).
  Status Send(sim::VirtualClock& clock, sim::NodeId src, sim::NodeId dst,
              uint64_t bytes, const std::function<void(Nanos)>& deliver);

  uint64_t rpcs_issued() const { return rpcs_.load(std::memory_order_relaxed); }

 private:
  sim::Cluster& cluster_;
  Nanos wire_latency_;
  ConnectionTable connections_;
  std::atomic<uint64_t> rpcs_{0};
};

}  // namespace diesel::net
