#include "net/fault_injector.h"

#include <algorithm>

#include "common/hash.h"

namespace diesel::net {
namespace {

/// Uniform double in [0, 1) from a full-avalanche hash of (seed, src, dst,
/// now). Pure: the same query always rolls the same value.
double RollFor(uint64_t seed, sim::NodeId src, sim::NodeId dst, Nanos now) {
  uint64_t link = (static_cast<uint64_t>(src) << 32) |
                  (static_cast<uint64_t>(dst) + 1);
  uint64_t h = Mix64(seed ^ Mix64(link) ^ Mix64(now + 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      flap_fired_(plan_.node_flaps.size(), false),
      corruption_used_(plan_.corrupt_chunk_fetches.size(), false) {}

bool FaultInjector::NodeDown(sim::NodeId node, Nanos now) const {
  for (const NodeFlap& f : plan_.node_flaps) {
    if (f.node == node && now >= f.down_at && now < f.up_at) return true;
  }
  return false;
}

Nanos FaultInjector::RecoveryTime(sim::NodeId node, Nanos now) const {
  Nanos latest = 0;
  for (const NodeFlap& f : plan_.node_flaps) {
    if (f.node == node && now >= f.down_at && now < f.up_at)
      latest = std::max(latest, f.up_at);
  }
  return latest;
}

bool FaultInjector::ShouldDropRpc(sim::NodeId src, sim::NodeId dst,
                                  Nanos now) {
  // Direction-sensitive rules first: an asymmetric partition severs src->dst
  // only (RollFor hashes the ordered pair, so the reverse direction rolls —
  // and passes — independently).
  for (const AsymmetricPartition& p : plan_.asym_partitions) {
    if (p.src != src || p.dst != dst) continue;
    if (now < p.start || now >= p.end) continue;
    if (p.drop_prob <= 0.0) continue;
    if (RollFor(plan_.seed, src, dst, now) < p.drop_prob) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rpc_drops;
      ++stats_.asym_drops;
      return true;
    }
  }
  double prob = plan_.rpc_drop_prob;
  for (const LinkDropRule& r : plan_.link_drops) {
    if ((r.a == src && r.b == dst) || (r.a == dst && r.b == src)) {
      prob = r.drop_prob;
      break;
    }
  }
  if (prob <= 0.0) return false;
  if (RollFor(plan_.seed, src, dst, now) >= prob) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.rpc_drops;
  return true;
}

Nanos FaultInjector::ExtraLatency(Nanos now) {
  Nanos extra = 0;
  for (const LatencySpike& s : plan_.latency_spikes) {
    if (now >= s.start && now < s.end) extra += s.extra;
  }
  if (extra > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.latency_spike_hits;
  }
  return extra;
}

bool FaultInjector::ConsumeChunkCorruption(size_t chunk_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < plan_.corrupt_chunk_fetches.size(); ++i) {
    if (plan_.corrupt_chunk_fetches[i] == chunk_index && !corruption_used_[i]) {
      corruption_used_[i] = true;
      ++stats_.corruptions_injected;
      return true;
    }
  }
  return false;
}

void FaultInjector::CorruptPayload(Bytes& blob, uint32_t header_len,
                                   size_t chunk_index) const {
  if (blob.size() <= header_len) return;
  size_t payload = blob.size() - header_len;
  size_t at = header_len +
              Mix64(plan_.seed ^ Mix64(chunk_index + 1)) % payload;
  blob[at] ^= 0xA5;
}

void FaultInjector::FireFlaps(
    Nanos now, const std::function<void(sim::NodeId)>& on_fire) {
  // Collect under the lock, fire outside it (on_fire takes fabric locks).
  std::vector<sim::NodeId> fired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < plan_.node_flaps.size(); ++i) {
      if (!flap_fired_[i] && now >= plan_.node_flaps[i].down_at) {
        flap_fired_[i] = true;
        ++stats_.flaps_fired;
        fired.push_back(plan_.node_flaps[i].node);
      }
    }
  }
  for (sim::NodeId n : fired) on_fire(n);
}

void FaultInjector::CountDownNodeRejection() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.down_node_rejections;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace diesel::net
