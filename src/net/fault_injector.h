// Deterministic fault-injection plan for the RPC fabric.
//
// A FaultInjector attached to a Fabric turns a seeded, schedule-driven
// FaultPlan into observable failures on the simulated network:
//
//  - RPC drops: per-link (or global) drop probability. The decision for one
//    (src, dst, virtual-time) triple is a pure hash of the plan seed, so runs
//    are bit-reproducible regardless of OS-thread interleaving, and a retry
//    after backoff (different virtual time) re-rolls independently.
//  - Node flaps: a node is down for a virtual-time window [down_at, up_at)
//    and auto-recovers when the window passes — no manual RecoverNode needed.
//    When a flap first fires, the fabric tears down the node's connections so
//    topology counts stay truthful (ConnectionTable::DisconnectNode).
//  - Latency spikes: extra one-way wire latency during a window.
//  - Payload corruption: one-shot events that flip a byte in the next fetch
//    of a listed chunk. Applied by the cache layer's chunk-fetch path (the
//    fabric never sees payloads); detection is CRC-driven and the read is
//    re-fetched, closing the loop.
//
// Every injected fault is counted; tests assert the log against the plan and
// re-run the same seed to prove reproducibility.
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/units.h"
#include "sim/calibration.h"
#include "sim/node.h"

namespace diesel::net {

/// Transient outage of one node over a virtual-time window.
struct NodeFlap {
  sim::NodeId node = sim::kInvalidNode;
  Nanos down_at = 0;
  Nanos up_at = 0;  // exclusive: the node serves again at up_at
};

/// Extra one-way wire latency during [start, end).
struct LatencySpike {
  Nanos start = 0;
  Nanos end = 0;
  Nanos extra = 0;
};

/// Per-link drop-probability override (matched on exact src/dst pair,
/// either direction).
struct LinkDropRule {
  sim::NodeId a = sim::kInvalidNode;
  sim::NodeId b = sim::kInvalidNode;
  double drop_prob = 0.0;
};

/// One-way link failure during [start, end): RPCs src->dst drop with
/// `drop_prob` while dst->src keeps delivering — the half-split churn tests
/// need (a node everyone hears but nobody reaches, and vice versa). Rolled
/// with the same seeded hash as plain drops, so replays are deterministic.
struct AsymmetricPartition {
  sim::NodeId src = sim::kInvalidNode;
  sim::NodeId dst = sim::kInvalidNode;
  Nanos start = 0;
  Nanos end = ~Nanos{0};
  double drop_prob = 1.0;
};

struct FaultPlan {
  uint64_t seed = 1;
  /// Drop probability applied to every inter-node RPC (loopback is exempt).
  double rpc_drop_prob = 0.0;
  std::vector<LinkDropRule> link_drops;
  std::vector<AsymmetricPartition> asym_partitions;
  std::vector<NodeFlap> node_flaps;
  std::vector<LatencySpike> latency_spikes;
  /// Chunk indices whose next fetch returns a corrupted payload (one-shot
  /// per entry; consumed by the cache layer via ConsumeChunkCorruption).
  std::vector<size_t> corrupt_chunk_fetches;
  /// Virtual time a caller spends detecting a dropped RPC or a flapped node
  /// (connect timeout — the libMemcached behaviour §5.1 describes).
  Nanos fault_detect_timeout = sim::kFaultDetectTimeout;
};

struct FaultInjectorStats {
  uint64_t rpc_drops = 0;
  uint64_t down_node_rejections = 0;
  uint64_t latency_spike_hits = 0;
  uint64_t corruptions_injected = 0;
  uint64_t flaps_fired = 0;
  uint64_t asym_drops = 0;  // drops charged to a one-way partition rule
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Is `node` inside an active flap window at `now`? Pure function of the
  /// plan — recovery is automatic once the window passes.
  bool NodeDown(sim::NodeId node, Nanos now) const;

  /// Virtual time at which the latest flap covering `now` ends (callers can
  /// size retry budgets); 0 when the node is up.
  Nanos RecoveryTime(sim::NodeId node, Nanos now) const;

  /// Roll the (deterministic) dice for one RPC on src->dst at `now`.
  /// Counts a drop when it hits.
  bool ShouldDropRpc(sim::NodeId src, sim::NodeId dst, Nanos now);

  /// Extra one-way wire latency at `now` (sums overlapping spikes); counts a
  /// hit when non-zero.
  Nanos ExtraLatency(Nanos now);

  /// One-shot: true exactly once per plan entry naming `chunk_index`.
  bool ConsumeChunkCorruption(size_t chunk_index);

  /// Flip one payload byte of `blob` past `header_len`, deterministically by
  /// seed and chunk index (helper for the cache layer's injection site).
  void CorruptPayload(Bytes& blob, uint32_t header_len,
                      size_t chunk_index) const;

  /// Invoke `on_fire(node)` once per flap whose window has begun by `now`
  /// (the fabric uses this to tear down the node's connections).
  void FireFlaps(Nanos now, const std::function<void(sim::NodeId)>& on_fire);

  void CountDownNodeRejection();

  FaultInjectorStats stats() const;

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<bool> flap_fired_;
  std::vector<bool> corruption_used_;
  FaultInjectorStats stats_;
};

}  // namespace diesel::net
