#include "cache/registry.h"

#include <algorithm>

namespace diesel::cache {

uint32_t TaskRegistry::Register(net::EndpointId ep) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t rank = static_cast<uint32_t>(members_.size());
  members_.push_back(ep);
  // Smallest rank on the node wins; first registrant keeps mastership.
  master_rank_.try_emplace(ep.node, rank);
  return rank;
}

size_t TaskRegistry::NumClients() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_.size();
}

std::vector<net::EndpointId> TaskRegistry::Members() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return members_;
}

std::vector<sim::NodeId> TaskRegistry::Nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<sim::NodeId> nodes;
  for (const net::EndpointId& ep : members_) {
    if (std::find(nodes.begin(), nodes.end(), ep.node) == nodes.end()) {
      nodes.push_back(ep.node);
    }
  }
  return nodes;
}

Result<net::EndpointId> TaskRegistry::MasterOf(sim::NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = master_rank_.find(node);
  if (it == master_rank_.end())
    return Status::NotFound("no clients registered on node " +
                            std::to_string(node));
  return members_[it->second];
}

bool TaskRegistry::IsMaster(net::EndpointId ep) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = master_rank_.find(ep.node);
  return it != master_rank_.end() && members_[it->second] == ep;
}

std::vector<net::EndpointId> TaskRegistry::Masters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<net::EndpointId> out;
  out.reserve(master_rank_.size());
  for (const auto& [node, rank] : master_rank_) {
    out.push_back(members_[rank]);
  }
  return out;
}

}  // namespace diesel::cache
