// Cross-task shared cache hook (implemented by tenant::CacheFabric).
//
// A TaskCache is task-grained by design: it is built at task start and torn
// down with the task, so two jobs training over the same dataset each pay
// full backend reads. A SharedCacheTier breaks that waste without giving up
// task containment: the task cache stays the authority for its own
// partitions, but on a miss it first asks the tier to ADOPT a chunk some
// other task already has resident, every backend load is PUBLISHED so later
// tasks can adopt it, and teardown DEMOTES residency into the tier instead
// of discarding it.
//
// The tier hands out the same refcounted core::ChunkBuffer the cache
// stores, so adoption is a refcount bump (plus the simulated transfer
// charge) and outstanding FileSlice views stay valid no matter which task —
// including the one that originally loaded the bytes — tears down first.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/chunk_buffer.h"
#include "sim/clock.h"
#include "sim/node.h"

namespace diesel::cache {

class SharedCacheTier {
 public:
  virtual ~SharedCacheTier() = default;

  /// An adopted chunk: the shared blob plus the per-file CRC memo that
  /// travelled with it (same immutable bytes, same verification state).
  struct Adopted {
    core::ChunkBuffer buffer;
    std::vector<bool> verified;
  };

  /// Warm-start lookup for `chunk_index` of the bound dataset. On a hit the
  /// simulated transfer (home node -> `reader`) is charged to `clock` and
  /// the shared buffer is returned; NotFound means nothing is resident and
  /// the caller pays the backend read.
  virtual Result<Adopted> Adopt(sim::VirtualClock& clock, sim::NodeId reader,
                                size_t chunk_index) = 0;

  /// Offer a freshly backend-loaded chunk (now resident on `home`) to the
  /// tier so other tasks can adopt it. Admission may decline; either way
  /// the caller keeps its own copy.
  virtual void Publish(sim::NodeId home, size_t chunk_index,
                       const core::ChunkBuffer& buffer,
                       const std::vector<bool>& verified, Nanos now) = 0;

  /// Teardown demote: offer a resident chunk to the tier instead of
  /// dropping it. Returns the bytes the tier retained (0 = declined, the
  /// bytes are genuinely discarded).
  virtual uint64_t Demote(sim::NodeId home, size_t chunk_index,
                          const core::ChunkBuffer& buffer,
                          const std::vector<bool>& verified, Nanos now) = 0;

  /// A reader detected CRC corruption in `buffer` (a copy it adopted from,
  /// or published to, the tier). Drop the shared entry for `chunk_index` iff
  /// it still holds those exact bytes, so later adopters do not keep paying
  /// the adopt transfer + failed scan + backend refetch; if the entry was
  /// already replaced with a different blob, this is a no-op.
  virtual void Invalidate(size_t chunk_index,
                          const core::ChunkBuffer& buffer) = 0;
};

}  // namespace diesel::cache
