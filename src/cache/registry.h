// Task registration and master-client election (§4.2, Fig. 7).
//
// Every I/O process of a DLT task spawns a DIESEL client which registers
// here and receives a rank. On each physical node the client with the
// smallest rank becomes the *master client*; only masters participate in
// dataset partitioning, and all other clients fetch through masters. That
// caps the connection count at p x (n-1) instead of the full mesh n x (n-1).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "net/fabric.h"

namespace diesel::cache {

class TaskRegistry {
 public:
  /// Register a client; returns its rank (registration order).
  uint32_t Register(net::EndpointId ep);

  size_t NumClients() const;
  std::vector<net::EndpointId> Members() const;

  /// Distinct physical nodes, in first-registration order.
  std::vector<sim::NodeId> Nodes() const;

  /// The master client on `node` (smallest rank there).
  Result<net::EndpointId> MasterOf(sim::NodeId node) const;
  bool IsMaster(net::EndpointId ep) const;

  /// All master endpoints, one per node.
  std::vector<net::EndpointId> Masters() const;

 private:
  mutable std::mutex mutex_;
  std::vector<net::EndpointId> members_;                 // rank -> endpoint
  std::map<sim::NodeId, uint32_t> master_rank_;          // node -> rank
};

}  // namespace diesel::cache
