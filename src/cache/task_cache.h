// Task-grained distributed cache (§4.2, Fig. 7).
//
// The training dataset is cached across the worker nodes of ONE task:
// chunks are partitioned over the master clients (one per physical node);
// non-master clients fetch through masters, so any file is one hop away.
// Node failures stay contained within the task, and because the cache loads
// whole >=4MB chunks from the backend, cold-start/recovery is fast
// (Fig. 11b) compared to per-file caching systems.
//
// Policies (§4.2 "Cache Policies"):
//  - oneshot:   Preload() pulls the full dataset right after registration
//               (overlapped with checkpoint loading in real tasks);
//  - on-demand: a miss pulls the owning chunk from the server, so epoch 1
//               is slower and later epochs are fully cached.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/registry.h"
#include "common/circuit_breaker.h"
#include "common/retry.h"
#include "core/client.h"
#include "core/server.h"
#include "core/snapshot.h"
#include "net/fabric.h"

namespace diesel::cache {

enum class CachePolicy { kOnDemand, kOneshot };

struct TaskCacheOptions {
  CachePolicy policy = CachePolicy::kOnDemand;
  /// Cap on cached bytes per node; 0 = unbounded. When full, FIFO eviction.
  uint64_t per_node_capacity_bytes = 0;
  /// Concurrent chunk-fetch streams per node during Preload/Reload (the
  /// oneshot policy pulls with multiple I/O workers).
  uint32_t preload_streams = 8;
  /// Retry policy for peer and backend RPCs (rides out flaps/drops).
  RetryPolicy retry;
  /// Per-owner-node circuit breaker: after `failure_threshold` consecutive
  /// peer failures the node is declared down (partition dropped) and reads
  /// fail over without paying the detection timeout each time.
  CircuitBreakerConfig breaker;
  /// When a peer master is unreachable, fall back to reading the file
  /// directly from the server instead of failing the Get.
  bool degraded_reads = true;
};

struct TaskCacheStats {
  uint64_t local_hits = 0;
  uint64_t peer_hits = 0;
  uint64_t chunk_loads = 0;     // backend chunk fetches (misses)
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;
  uint64_t failovers = 0;            // peer reads degraded to server reads
  uint64_t breaker_opens = 0;        // owner nodes declared down
  uint64_t node_recoveries = 0;      // owner nodes that came back
  uint64_t corruptions_detected = 0; // CRC mismatches caught and re-fetched
};

class TaskCache {
 public:
  /// `snapshot` provides the chunk list and file->chunk mapping; `server`
  /// is the backend for misses. Both must outlive the cache.
  TaskCache(net::Fabric& fabric, core::DieselServer& server,
            const core::MetadataSnapshot& snapshot, TaskRegistry& registry,
            TaskCacheOptions options);

  /// Open the p x (n-1) connection topology (lines 2 in Fig. 7): every
  /// client connects to every master except itself.
  void EstablishConnections();

  /// Directed connection opens performed by EstablishConnections — the
  /// quantity the paper counts as p x (n-1). (The fabric's ConnectionTable
  /// deduplicates the master<->master pairs into undirected edges.)
  size_t connections_opened() const { return connections_opened_; }

  /// Owner node of a chunk (round-robin over master nodes).
  Result<sim::NodeId> OwnerNodeOfChunk(size_t chunk_index) const;

  /// Oneshot policy: every master pulls its partition from the server.
  /// Loader clocks start at `start`; returns the time the slowest node
  /// finished (virtual makespan).
  Result<Nanos> Preload(Nanos start);

  /// Serve a file read for the client `requester` (Fig. 4 read flow).
  Result<Bytes> GetFile(sim::VirtualClock& clock, net::EndpointId requester,
                        const core::FileMeta& meta);

  /// Fraction of chunks currently resident.
  double HitRatio() const;

  /// Simulate the failure of one task node: its partition is lost and, per
  /// the containment argument, the whole task must restart — Reload() then
  /// measures the chunk-granular recovery time.
  void DropNode(sim::NodeId node);
  void DropAll();

  /// Reload every non-resident chunk (recovery). Returns makespan end time.
  Result<Nanos> Reload(Nanos start);

  TaskCacheStats stats() const;
  const TaskCacheOptions& options() const { return options_; }

  /// Adapter: per-client handle implementing DatasetCacheInterface.
  std::unique_ptr<core::DatasetCacheInterface> HandleFor(
      net::EndpointId client);

 private:
  struct CachedChunk {
    Bytes blob;
    uint32_t header_len = 0;
  };

  struct NodePartition {
    mutable std::mutex mutex;
    std::unordered_map<size_t, CachedChunk> chunks;  // chunk index -> blob
    std::vector<size_t> fifo;
    uint64_t bytes = 0;
  };

  /// Slice a file out of a cached chunk (offsets are payload-relative).
  /// Verifies the file's CRC32C when the metadata carries one; a mismatch
  /// returns Corruption so callers evict and re-fetch.
  static Result<Bytes> SliceFile(const CachedChunk& chunk,
                                 const core::FileMeta& meta);

  /// Fetch one chunk blob from the server (with retry), applying any
  /// scheduled payload corruption from the fabric's fault injector.
  Result<Bytes> FetchChunkBlob(sim::VirtualClock& clock, sim::NodeId reader,
                               size_t chunk_index, uint32_t* header_len);

  CircuitBreaker& BreakerFor(sim::NodeId node);

  /// Peer-path fallback when the owner is unreachable: read the file range
  /// straight from the server (degraded but correct).
  Result<Bytes> DegradedRead(sim::VirtualClock& clock, net::EndpointId requester,
                             const core::FileMeta& meta);

  /// Owner came back from a flap: count it and, under the oneshot policy,
  /// re-own its partition chunk-by-chunk (charged to a detached clock — the
  /// reload overlaps the requester's work).
  void OnOwnerRecovered(sim::NodeId owner, Nanos now);

  /// Preload the partition of a single node; returns its finish time.
  Result<Nanos> PreloadPartition(sim::NodeId node, Nanos start);

  /// Make `chunk_index` resident on `owner`, loading from the server on a
  /// miss (charges `clock`). No-op when already resident.
  Status EnsureLoaded(sim::VirtualClock& clock, sim::NodeId owner,
                      size_t chunk_index);

  /// Copy one file out of the owner's partition (loads on miss). The slice
  /// happens under the partition lock, so concurrent eviction is safe.
  Result<Bytes> ReadFromPartition(sim::VirtualClock& clock, sim::NodeId owner,
                                  size_t chunk_index,
                                  const core::FileMeta& meta);

  void InsertChunk(sim::NodeId owner, size_t chunk_index, Bytes blob,
                   uint32_t header_len);

  net::Fabric& fabric_;
  core::DieselServer& server_;
  const core::MetadataSnapshot& snapshot_;
  TaskRegistry& registry_;
  TaskCacheOptions options_;
  std::vector<sim::NodeId> owner_nodes_;  // master nodes, partition targets
  mutable std::mutex partitions_mutex_;
  std::unordered_map<sim::NodeId, std::unique_ptr<NodePartition>> partitions_;
  mutable std::mutex stats_mutex_;
  TaskCacheStats stats_;
  /// One breaker per owner node (std::map: stable references under insert).
  std::mutex breakers_mutex_;
  std::map<sim::NodeId, CircuitBreaker> breakers_;
  size_t connections_opened_ = 0;
};

}  // namespace diesel::cache
