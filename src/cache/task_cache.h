// Task-grained distributed cache (§4.2, Fig. 7).
//
// The training dataset is cached across the worker nodes of ONE task:
// chunks are partitioned over the master clients (one per physical node);
// non-master clients fetch through masters, so any file is one hop away.
// Node failures stay contained within the task, and because the cache loads
// whole >=4MB chunks from the backend, cold-start/recovery is fast
// (Fig. 11b) compared to per-file caching systems.
//
// Policies (§4.2 "Cache Policies"):
//  - oneshot:   Preload() pulls the full dataset right after registration
//               (overlapped with checkpoint loading in real tasks);
//  - on-demand: a miss pulls the owning chunk from the server, so epoch 1
//               is slower and later epochs are fully cached.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/registry.h"
#include "cache/shared_tier.h"
#include "common/circuit_breaker.h"
#include "common/retry.h"
#include "core/chunk_buffer.h"
#include "core/client.h"
#include "core/server.h"
#include "core/snapshot.h"
#include "membership/membership.h"
#include "net/fabric.h"

namespace diesel::cache {

enum class CachePolicy { kOnDemand, kOneshot };

/// Clairvoyant eviction hook (src/prefetch): while an oracle is installed,
/// capacity eviction picks the resident chunk whose next access lies
/// farthest ahead in the epoch (Belady's MIN) instead of FIFO order. The
/// oracle is derived from the epoch's shuffle plan, which fixes the entire
/// access sequence the moment it is drawn (§4.3).
class EvictionOracle {
 public:
  /// NextAccessAfter result for a chunk that is dead for the rest of the
  /// epoch — always the preferred eviction victim.
  static constexpr uint64_t kNever = ~uint64_t{0};

  virtual ~EvictionOracle() = default;

  /// First position >= `cursor` (in the epoch's file order) at which
  /// `chunk_index` is accessed; kNever when there is none.
  virtual uint64_t NextAccessAfter(size_t chunk_index,
                                   uint64_t cursor) const = 0;
};

struct TaskCacheOptions {
  CachePolicy policy = CachePolicy::kOnDemand;
  /// Cap on cached bytes per node; 0 = unbounded. When full, FIFO eviction.
  uint64_t per_node_capacity_bytes = 0;
  /// Concurrent chunk-fetch streams per node during Preload/Reload (the
  /// oneshot policy pulls with multiple I/O workers).
  uint32_t preload_streams = 8;
  /// Retry policy for peer and backend RPCs (rides out flaps/drops).
  RetryPolicy retry;
  /// Per-owner-node circuit breaker: after `failure_threshold` consecutive
  /// peer failures the node is declared down (partition dropped) and reads
  /// fail over without paying the detection timeout each time.
  CircuitBreakerConfig breaker;
  /// When a peer master is unreachable, fall back to reading the file
  /// directly from the server instead of failing the Get.
  bool degraded_reads = true;
};

struct TaskCacheStats {
  uint64_t local_hits = 0;
  uint64_t peer_hits = 0;
  uint64_t chunk_loads = 0;     // backend chunk fetches (misses)
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;  // currently resident (insert - evict - drop)
  uint64_t failovers = 0;            // peer reads degraded to server reads
  uint64_t breaker_opens = 0;        // owner nodes declared down
  uint64_t node_recoveries = 0;      // owner nodes that came back
  uint64_t corruptions_detected = 0; // CRC mismatches caught and re-fetched
  uint64_t evicted_bytes = 0;        // total bytes removed by capacity eviction
  uint64_t pinned_chunks = 0;        // chunks currently pinned against eviction
  uint64_t prefetch_hits = 0;        // reads served by a fill that was ready
  uint64_t prefetch_late = 0;        // reads that waited out an in-flight fill
  uint64_t prefetch_wasted = 0;      // fills evicted/dropped before any read
  uint64_t migrated_chunks = 0;      // chunks streamed peer->peer on rescale
  uint64_t migrated_bytes = 0;       // bytes those migrations moved
  uint64_t reown_chunks = 0;         // chunks re-fetched from the backend
  uint64_t reown_skipped = 0;        // re-own skipped: oracle says dead
  uint64_t adopted_chunks = 0;       // misses warm-started from the shared tier
  uint64_t adopted_bytes = 0;        // bytes those adoptions avoided re-reading
  uint64_t demoted_chunks = 0;       // teardown chunks the shared tier retained
  uint64_t demoted_bytes = 0;        // bytes demoted into the shared tier
  uint64_t discarded_bytes = 0;      // teardown bytes no tier retained (waste)
};

class TaskCache : public membership::MembershipListener {
 public:
  /// `snapshot` provides the chunk list and file->chunk mapping; `server`
  /// is the backend for misses. Both must outlive the cache.
  TaskCache(net::Fabric& fabric, core::DieselServer& server,
            const core::MetadataSnapshot& snapshot, TaskRegistry& registry,
            TaskCacheOptions options);

  /// Open the p x (n-1) connection topology (lines 2 in Fig. 7): every
  /// client connects to every master except itself.
  void EstablishConnections();

  /// Directed connection opens performed by EstablishConnections — the
  /// quantity the paper counts as p x (n-1). (The fabric's ConnectionTable
  /// deduplicates the master<->master pairs into undirected edges.)
  size_t connections_opened() const { return connections_opened_; }

  /// Owner node of a chunk. With a membership table attached this is the
  /// consistent-hash ring owner (a join/leave moves only ~1/N of chunks);
  /// without one, the original static round-robin over the registration-time
  /// master nodes (perfectly balanced, and what every fixed-membership bench
  /// is calibrated against).
  Result<sim::NodeId> OwnerNodeOfChunk(size_t chunk_index) const;

  // ---- Elastic membership (src/membership) -------------------------------

  /// Switch ownership to `table`'s consistent-hash ring and subscribe for
  /// churn. Call once, after Bootstrap and before any joins/drains/crashes;
  /// attach the cache BEFORE any prefetch scheduler so migration runs first.
  /// The table must outlive the cache.
  void AttachMembership(membership::MembershipTable& table);

  /// Membership churn entry point (MembershipListener). Planned changes
  /// (join / drain-start / recover) stream the moved resident chunks from
  /// their old owner to the new one on detached migration clocks — demand
  /// reads keep hitting the old owner until a move lands, so nothing ever
  /// stalls. A crash drops the lost partition and (oneshot policy) re-owns
  /// the moved chunks from the backend; drain-complete finalizes the moves
  /// and drops whatever the drained node still held.
  void OnMembershipChange(const membership::MembershipChange& change) override;

  /// Virtual time the last membership transition fully landed (max over its
  /// migration arrivals / re-own finishes); 0 before any churn. The bench's
  /// recovery-time objective is measured against this.
  Nanos last_transition_end() const;

  /// Number of migrations recorded but not yet finalized (moves in flight).
  size_t migrations_in_flight() const;

  /// Oneshot policy: every master pulls its partition from the server.
  /// Loader clocks start at `start`; returns the time the slowest node
  /// finished (virtual makespan).
  Result<Nanos> Preload(Nanos start);

  /// Serve a file read for the client `requester` (Fig. 4 read flow).
  /// Materializes an owned copy; the zero-copy variant is GetFileSlice.
  Result<Bytes> GetFile(sim::VirtualClock& clock, net::EndpointId requester,
                        const core::FileMeta& meta);

  /// Zero-copy read: returns a FileSlice viewing the shared cached chunk
  /// blob. The slice holds a reference, so it stays valid after the chunk is
  /// evicted or migrated. Identical virtual-time behavior to GetFile.
  Result<core::FileSlice> GetFileSlice(sim::VirtualClock& clock,
                                       net::EndpointId requester,
                                       const core::FileMeta& meta);

  /// Batched read (results in input order). Files are grouped by serving
  /// owner; each remote group of two or more goes out as ONE multi-get
  /// (Fabric::CallBatch), amortizing the per-RPC overhead across the group.
  /// Per-file semantics (hit/miss accounting, CRC checks, corruption
  /// re-fetch, degraded fallback) are preserved: a failed batch falls back
  /// to the per-file path, so contents and cache stats match an unbatched
  /// run byte for byte.
  Result<std::vector<core::FileSlice>> GetFiles(
      sim::VirtualClock& clock, net::EndpointId requester,
      std::span<const core::FileMeta> metas);

  /// Fraction of chunks currently resident.
  double HitRatio() const;

  /// Simulate the failure of one task node: its partition is lost and, per
  /// the containment argument, the whole task must restart — Reload() then
  /// measures the chunk-granular recovery time.
  void DropNode(sim::NodeId node);
  void DropAll();

  // ---- Cross-task shared tier (src/tenant) -------------------------------

  /// Attach the cluster-wide shared tier: misses first try to adopt an
  /// already-resident copy from another task, backend loads are published
  /// for later tasks, and Teardown demotes residency instead of dropping
  /// it. nullptr detaches. The tier must outlive the cache.
  void AttachSharedTier(SharedCacheTier* tier);

  /// Orderly end of task: every resident chunk is offered to the shared
  /// tier (demote) before the partitions are cleared. Without a tier this
  /// is DropAll plus accounting — the discarded bytes are counted so the
  /// teardown waste is visible even when tenancy is disabled. DropAll /
  /// DropNode keep their crash semantics (nothing survives a crash).
  /// Returns the bytes the tier retained.
  uint64_t Teardown(Nanos now);

  /// Reload every non-resident chunk (recovery). Returns makespan end time.
  Result<Nanos> Reload(Nanos start);

  // ---- Clairvoyant prefetch hooks (driven by prefetch::PrefetchScheduler) --

  /// Install the epoch's eviction oracle (nullptr restores FIFO). The oracle
  /// must stay alive until uninstalled; the prefetch scheduler owns it for
  /// the duration of the epoch.
  void InstallEvictionOracle(const EvictionOracle* oracle);

  /// Training progress in epoch file-order positions; Belady distances are
  /// measured from here.
  void SetEpochCursor(uint64_t position);

  /// Pin `chunk_index` against capacity eviction (in-flight or soon-needed
  /// fill). Pins nest per chunk: idempotent — a chunk is pinned or not.
  void Pin(size_t chunk_index);
  void Unpin(size_t chunk_index);

  /// Is the chunk resident in its owner's partition right now?
  bool ChunkResident(size_t chunk_index) const;

  struct PrefetchOutcome {
    bool inserted = false;          // capacity denied when false
    bool already_resident = false;  // raced with a foreground load
    uint64_t bytes = 0;             // blob size fetched
    Nanos ready_at = 0;             // virtual completion time of the fill
  };

  /// Background fill: fetch `chunk_index` into its owner partition charging
  /// `stream` (a detached prefetch-stream clock). The chunk becomes readable
  /// at the stream's finish time — a foreground read arriving earlier waits
  /// out the remainder (counted as prefetch.late); one arriving after is a
  /// clean prefetch.hit.
  Result<PrefetchOutcome> PrefetchChunk(sim::VirtualClock& stream,
                                        size_t chunk_index);

  TaskCacheStats stats() const;
  const TaskCacheOptions& options() const { return options_; }

  /// Adapter: per-client handle implementing DatasetCacheInterface.
  std::unique_ptr<core::DatasetCacheInterface> HandleFor(
      net::EndpointId client);

 private:
  struct CachedChunk {
    /// Shared immutable blob: reads hand out refcounted slices instead of
    /// copies, and eviction only drops the cache's reference.
    core::ChunkBuffer buffer;
    Nanos ready_at = 0;       // fill completion time (0: loaded in-line)
    bool prefetched = false;  // inserted by the prefetch scheduler
    bool accessed = false;    // served at least one read since insertion
    /// Per-file CRC memo (indexed by FileMeta::index_in_chunk): each file's
    /// checksum is verified at most once per residency; later reads of the
    /// same immutable bytes skip the scan.
    std::vector<bool> verified;
  };

  struct NodePartition {
    mutable std::mutex mutex;
    std::unordered_map<size_t, CachedChunk> chunks;  // chunk index -> blob
    /// Insertion order; doubles as the deterministic victim-scan order.
    std::vector<size_t> fifo;
    std::unordered_set<size_t> pinned;
    uint64_t bytes = 0;
  };

  enum class InsertResult { kInserted, kAlreadyResident, kDenied };

  /// Slice a file out of a cached chunk (offsets are payload-relative) as a
  /// zero-copy view of the shared blob. Verifies the file's CRC32C when the
  /// metadata carries one — once per residency, memoized in
  /// `chunk.verified` — and a mismatch returns Corruption so callers evict
  /// and re-fetch.
  static Result<core::FileSlice> SliceFile(CachedChunk& chunk,
                                           const core::FileMeta& meta);

  /// Fetch one chunk blob from the server (with retry), applying any
  /// scheduled payload corruption from the fabric's fault injector.
  Result<Bytes> FetchChunkBlob(sim::VirtualClock& clock, sim::NodeId reader,
                               size_t chunk_index, uint32_t* header_len);

  /// Body of GetFileSlice under its already-open span: phase annotations
  /// and the read.path.* attribution attach to the request's span while the
  /// wrapper observes end-to-end latency (with a tail exemplar carrying the
  /// span id).
  Result<core::FileSlice> GetFileSliceImpl(sim::VirtualClock& clock,
                                           net::EndpointId requester,
                                           const core::FileMeta& meta,
                                           obs::ScopedSpan& span);

  CircuitBreaker& BreakerFor(sim::NodeId node);

  /// Peer-path fallback when the owner is unreachable: read the file range
  /// straight from the server (degraded but correct).
  Result<Bytes> DegradedRead(sim::VirtualClock& clock, net::EndpointId requester,
                             const core::FileMeta& meta);

  /// Owner came back from a flap: count it and, under the oneshot policy,
  /// re-own its partition chunk-by-chunk (charged to a detached clock — the
  /// reload overlaps the requester's work).
  void OnOwnerRecovered(sim::NodeId owner, Nanos now);

  /// Preload the partition of a single node; returns its finish time.
  Result<Nanos> PreloadPartition(sim::NodeId node, Nanos start);

  /// Re-own `chunks` into `node` from the backend on detached stream clocks,
  /// skipping chunks the installed Belady oracle declares dead for the rest
  /// of the epoch (counted under reown_skipped — bytes the training loop
  /// will never read are not worth re-loading). Returns the finish time.
  Result<Nanos> ReownChunks(sim::NodeId node, const std::vector<size_t>& chunks,
                            Nanos start);

  /// The chunks `node` currently owns (ownership map at call time).
  std::vector<size_t> OwnedChunkList(sim::NodeId node) const;

  /// Nodes that own partitions right now (membership's active set, or the
  /// static registration-time master nodes).
  std::vector<sim::NodeId> CurrentOwnerNodes() const;

  /// Partition of `node`, created on first use (nodes can join mid-task).
  NodePartition& PartitionFor(sim::NodeId node);
  /// Read-only lookup; nullptr when the node never held a partition.
  const NodePartition* FindPartition(sim::NodeId node) const;

  /// Node a read of `chunk_index` should hit at `now`: the ring owner,
  /// indirected through any in-flight migration (the old owner keeps serving
  /// until the move's arrival time passes, then the move is finalized).
  Result<sim::NodeId> ServingOwner(size_t chunk_index, Nanos now);

  /// Erase the migration source copy once the move landed. Caller holds
  /// migration_mutex_; takes the source partition lock.
  void FinalizeMigration(size_t chunk_index, sim::NodeId from);

  /// Stream the resident moved chunks of a planned change to their new
  /// owners and schedule crash re-owns; updates chunk_owner_ and
  /// last_transition_end_.
  void MigrateForChange(const membership::MembershipChange& change);

  /// Make `chunk_index` resident on `owner`, loading from the server on a
  /// miss (charges `clock`). No-op when already resident.
  Status EnsureLoaded(sim::VirtualClock& clock, sim::NodeId owner,
                      size_t chunk_index);

  /// Charge the warm-start counters for one adopted chunk of `bytes`.
  void CountAdoption(uint64_t bytes);

  /// Slice one file out of the owner's partition (loads on miss). The slice
  /// is taken under the partition lock and holds its own reference on the
  /// blob, so concurrent eviction is safe.
  Result<core::FileSlice> ReadFromPartition(sim::VirtualClock& clock,
                                            sim::NodeId owner,
                                            size_t chunk_index,
                                            const core::FileMeta& meta);

  /// One coalesced multi-get against remote `owner` for `subs` (positions
  /// into `metas`/`out`). Mirrors GetFileSlice's breaker/retry handling at
  /// batch granularity; sub-requests it could not serve are left unset in
  /// `out` for the caller's per-file fallback.
  struct BatchSub {
    size_t pos = 0;          // index into metas/out
    size_t chunk_index = 0;  // resolved chunk of metas[pos]
  };
  void FetchOwnerBatch(sim::VirtualClock& clock, net::EndpointId requester,
                       sim::NodeId owner, std::span<const BatchSub> subs,
                       std::span<const core::FileMeta> metas,
                       std::vector<Result<core::FileSlice>>& out);

  InsertResult InsertChunk(sim::NodeId owner, size_t chunk_index,
                           core::ChunkBuffer buffer, bool prefetched = false,
                           Nanos ready_at = 0,
                           std::vector<bool> verified = {});

  /// Victim-scan over `part.fifo` (deterministic order) with `part.mutex`
  /// held: FIFO picks the first unpinned entry; with an oracle installed,
  /// the unpinned chunk with the farthest next access wins (dead chunks —
  /// kNever — immediately). Returns fifo index, or SIZE_MAX when every
  /// resident chunk is pinned. `ignore_pins` widens the scan to pinned
  /// chunks (demand inserts outrank prefetch pins as a last resort).
  size_t PickVictimLocked(const NodePartition& part,
                          bool ignore_pins = false) const;

  /// Remove fifo[victim] from the partition (lock held) and charge the
  /// eviction counters, including prefetch.wasted for fills that never
  /// served a read.
  void EvictAtLocked(NodePartition& part, size_t victim);

  /// Shared body of DropNode/DropAll (lock held): counts wasted fills and
  /// releases pins before clearing the partition.
  void DropPartitionLocked(NodePartition& part);

  net::Fabric& fabric_;
  core::DieselServer& server_;
  const core::MetadataSnapshot& snapshot_;
  TaskRegistry& registry_;
  TaskCacheOptions options_;
  std::vector<sim::NodeId> owner_nodes_;  // master nodes, partition targets
  mutable std::mutex partitions_mutex_;
  std::unordered_map<sim::NodeId, std::unique_ptr<NodePartition>> partitions_;
  /// Elastic membership (null = static round-robin ownership). Set once by
  /// AttachMembership before churn starts; hot paths read it lock-free.
  std::atomic<membership::MembershipTable*> membership_{nullptr};
  /// Cross-task shared tier (null = task-private caching, the seed
  /// behavior). Hot paths read it lock-free; it only engages on misses and
  /// teardown, so attached-but-idle costs nothing.
  std::atomic<SharedCacheTier*> shared_tier_{nullptr};
  /// In-flight move of one chunk: the old owner serves reads until
  /// ready_at, after which the source copy is finalized away.
  struct MigrationRec {
    sim::NodeId from = sim::kInvalidNode;
    sim::NodeId to = sim::kInvalidNode;
    Nanos ready_at = 0;
  };
  /// Guards migrations_, chunk_owner_ and last_transition_end_. Ordering:
  /// migration_mutex_ before any partition mutex, never the reverse.
  mutable std::mutex migration_mutex_;
  std::unordered_map<size_t, MigrationRec> migrations_;
  std::vector<sim::NodeId> chunk_owner_;  // ownership snapshot (attached mode)
  Nanos last_transition_end_ = 0;
  /// Where each live pin landed (ownership may move between Pin and Unpin).
  mutable std::mutex pin_mutex_;
  std::unordered_map<size_t, sim::NodeId> pin_home_;
  mutable std::mutex stats_mutex_;
  TaskCacheStats stats_;
  /// One breaker per owner node (std::map: stable references under insert).
  std::mutex breakers_mutex_;
  std::map<sim::NodeId, CircuitBreaker> breakers_;
  size_t connections_opened_ = 0;
  /// Belady state: the installed oracle (guarded — installs happen only at
  /// epoch boundaries, evictions read it under the partition lock) and the
  /// training cursor distances are measured from.
  mutable std::mutex oracle_mutex_;
  const EvictionOracle* oracle_ = nullptr;
  std::atomic<uint64_t> cursor_{0};
};

}  // namespace diesel::cache
