#include "cache/task_cache.h"

#include <algorithm>

#include "core/chunk_format.h"
#include "sim/calibration.h"

namespace diesel::cache {
namespace {

constexpr uint64_t kPeerRequestBytes = 96;

}  // namespace

TaskCache::TaskCache(net::Fabric& fabric, core::DieselServer& server,
                     const core::MetadataSnapshot& snapshot,
                     TaskRegistry& registry, TaskCacheOptions options)
    : fabric_(fabric), server_(server), snapshot_(snapshot),
      registry_(registry), options_(options) {
  owner_nodes_ = registry_.Nodes();
  for (sim::NodeId node : owner_nodes_) {
    partitions_.emplace(node, std::make_unique<NodePartition>());
  }
}

void TaskCache::EstablishConnections() {
  std::vector<net::EndpointId> masters = registry_.Masters();
  for (const net::EndpointId& client : registry_.Members()) {
    for (const net::EndpointId& master : masters) {
      if (client == master) continue;
      fabric_.connections().Connect(client, master);
      ++connections_opened_;
    }
  }
}

Result<sim::NodeId> TaskCache::OwnerNodeOfChunk(size_t chunk_index) const {
  if (owner_nodes_.empty())
    return Status::FailedPrecondition("no task nodes registered");
  return owner_nodes_[chunk_index % owner_nodes_.size()];
}

Result<Bytes> TaskCache::SliceFile(const CachedChunk& chunk,
                                   const core::FileMeta& meta) {
  uint64_t begin = chunk.header_len + meta.offset;
  if (begin + meta.length > chunk.blob.size())
    return Status::Corruption("file range past cached chunk end: " +
                              meta.full_name);
  return Bytes(chunk.blob.begin() + static_cast<ptrdiff_t>(begin),
               chunk.blob.begin() + static_cast<ptrdiff_t>(begin + meta.length));
}

void TaskCache::InsertChunk(sim::NodeId owner, size_t chunk_index, Bytes blob,
                            uint32_t header_len) {
  NodePartition& part = *partitions_.at(owner);
  std::lock_guard<std::mutex> lock(part.mutex);
  if (part.chunks.count(chunk_index) > 0) return;
  uint64_t size = blob.size();
  if (options_.per_node_capacity_bytes != 0) {
    while (part.bytes + size > options_.per_node_capacity_bytes &&
           !part.fifo.empty()) {
      size_t victim = part.fifo.front();
      part.fifo.erase(part.fifo.begin());
      auto it = part.chunks.find(victim);
      if (it != part.chunks.end()) {
        part.bytes -= it->second.blob.size();
        part.chunks.erase(it);
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.evictions;
      }
    }
    if (part.bytes + size > options_.per_node_capacity_bytes) return;
  }
  part.chunks.emplace(chunk_index, CachedChunk{std::move(blob), header_len});
  part.fifo.push_back(chunk_index);
  part.bytes += size;
  std::lock_guard<std::mutex> slock(stats_mutex_);
  stats_.bytes_cached += size;
}

Status TaskCache::EnsureLoaded(sim::VirtualClock& clock, sim::NodeId owner,
                               size_t chunk_index) {
  NodePartition& part = *partitions_.at(owner);
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    if (part.chunks.count(chunk_index) > 0) return Status::Ok();
  }
  // Miss: pull the whole chunk from the server (on-demand policy / recovery).
  const core::ChunkId& id = snapshot_.chunks().at(chunk_index);
  DIESEL_ASSIGN_OR_RETURN(
      Bytes blob, server_.ReadChunk(clock, owner, snapshot_.dataset(), id));
  DIESEL_ASSIGN_OR_RETURN(core::ChunkView view, core::ChunkView::Parse(blob));
  uint32_t header_len = view.header_len();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.chunk_loads;
  }
  InsertChunk(owner, chunk_index, std::move(blob), header_len);
  return Status::Ok();
}

Result<Bytes> TaskCache::ReadFromPartition(sim::VirtualClock& clock,
                                           sim::NodeId owner,
                                           size_t chunk_index,
                                           const core::FileMeta& meta) {
  NodePartition& part = *partitions_.at(owner);
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    auto it = part.chunks.find(chunk_index);
    if (it != part.chunks.end()) return SliceFile(it->second, meta);
  }
  // Miss: fetch the chunk, slice from the local copy (immune to concurrent
  // eviction), then install it for subsequent readers.
  const core::ChunkId& id = snapshot_.chunks().at(chunk_index);
  DIESEL_ASSIGN_OR_RETURN(
      Bytes blob, server_.ReadChunk(clock, owner, snapshot_.dataset(), id));
  DIESEL_ASSIGN_OR_RETURN(core::ChunkView view, core::ChunkView::Parse(blob));
  CachedChunk local{std::move(blob), view.header_len()};
  DIESEL_ASSIGN_OR_RETURN(Bytes content, SliceFile(local, meta));
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.chunk_loads;
  }
  InsertChunk(owner, chunk_index, std::move(local.blob), local.header_len);
  return content;
}

Result<Nanos> TaskCache::Preload(Nanos start) {
  // Each master pulls its partition with `preload_streams` concurrent
  // fetch streams; nodes work in parallel so the makespan is the slowest
  // node's finish time.
  Nanos makespan = start;
  const size_t streams = std::max<uint32_t>(1, options_.preload_streams);
  for (sim::NodeId node : owner_nodes_) {
    std::vector<size_t> mine;
    for (size_t ci = 0; ci < snapshot_.chunks().size(); ++ci) {
      DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner, OwnerNodeOfChunk(ci));
      if (owner == node) mine.push_back(ci);
    }
    std::vector<sim::VirtualClock> clocks(streams, sim::VirtualClock(start));
    for (size_t next = 0; next < mine.size(); ++next) {
      // Earliest-clock stream fetches the next chunk (closed loop).
      size_t s = 0;
      for (size_t k = 1; k < streams; ++k) {
        if (clocks[k].now() < clocks[s].now()) s = k;
      }
      DIESEL_RETURN_IF_ERROR(EnsureLoaded(clocks[s], node, mine[next]));
    }
    for (const auto& c : clocks) makespan = std::max(makespan, c.now());
  }
  return makespan;
}

Result<Bytes> TaskCache::GetFile(sim::VirtualClock& clock,
                                 net::EndpointId requester,
                                 const core::FileMeta& meta) {
  size_t chunk_index = snapshot_.ChunkIndex(meta.chunk);
  if (chunk_index == static_cast<size_t>(-1))
    return Status::NotFound("chunk not in snapshot: " + meta.chunk.Encoded());
  DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner, OwnerNodeOfChunk(chunk_index));

  if (owner == requester.node) {
    // Local partition: memory-bus copy.
    DIESEL_ASSIGN_OR_RETURN(Bytes content,
                            ReadFromPartition(clock, owner, chunk_index, meta));
    Nanos t = fabric_.cluster().node(owner).membus().Serve(clock.now(),
                                                           meta.length);
    clock.AdvanceTo(t);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.local_hits;
    }
    return content;
  }

  // One-hop fetch from the owner's master client.
  Result<Bytes> content = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, requester.node, owner, kPeerRequestBytes, meta.length,
      [&](Nanos arrival) {
        sim::VirtualClock peer(arrival);
        content = ReadFromPartition(peer, owner, chunk_index, meta);
        Nanos t = fabric_.cluster().node(owner).membus().Serve(peer.now(),
                                                               meta.length);
        peer.AdvanceTo(t);
        return peer.now();
      }));
  if (content.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.peer_hits;
  }
  return content;
}

double TaskCache::HitRatio() const {
  size_t resident = 0;
  for (const auto& [node, part] : partitions_) {
    std::lock_guard<std::mutex> lock(part->mutex);
    resident += part->chunks.size();
  }
  size_t total = snapshot_.chunks().size();
  return total == 0 ? 1.0 : static_cast<double>(resident) /
                            static_cast<double>(total);
}

void TaskCache::DropNode(sim::NodeId node) {
  auto it = partitions_.find(node);
  if (it == partitions_.end()) return;
  NodePartition& part = *it->second;
  std::lock_guard<std::mutex> lock(part.mutex);
  part.chunks.clear();
  part.fifo.clear();
  part.bytes = 0;
}

void TaskCache::DropAll() {
  for (auto& [node, part] : partitions_) {
    std::lock_guard<std::mutex> lock(part->mutex);
    part->chunks.clear();
    part->fifo.clear();
    part->bytes = 0;
  }
}

Result<Nanos> TaskCache::Reload(Nanos start) { return Preload(start); }

TaskCacheStats TaskCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

namespace {

class Handle : public core::DatasetCacheInterface {
 public:
  Handle(TaskCache* cache, net::EndpointId ep) : cache_(cache), ep_(ep) {}
  Result<Bytes> GetFile(sim::VirtualClock& clock,
                        const core::FileMeta& meta) override {
    return cache_->GetFile(clock, ep_, meta);
  }

 private:
  TaskCache* cache_;
  net::EndpointId ep_;
};

}  // namespace

std::unique_ptr<core::DatasetCacheInterface> TaskCache::HandleFor(
    net::EndpointId client) {
  return std::make_unique<Handle>(this, client);
}

}  // namespace diesel::cache
