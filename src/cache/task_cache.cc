#include "cache/task_cache.h"

#include <algorithm>

#include "common/crc32.h"
#include "core/chunk_format.h"
#include "net/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/calibration.h"

namespace diesel::cache {
namespace {

constexpr uint64_t kPeerRequestBytes = 96;

/// Registry mirrors of TaskCacheStats, resolved once. The struct duplicates
/// the stats_ fields rather than replacing them so existing callers of
/// stats() keep exact per-instance numbers while the registry aggregates
/// process-wide.
struct CacheCounters {
  obs::Counter& local_hits;
  obs::Counter& peer_hits;
  obs::Counter& chunk_loads;
  obs::Counter& evictions;
  obs::Counter& failovers;
  obs::Counter& breaker_opens;
  obs::Counter& node_recoveries;
  obs::Counter& corruptions;
  obs::Gauge& bytes_cached;
};

CacheCounters& Counters() {
  static CacheCounters c{
      obs::Metrics().GetCounter("cache.local_hits"),
      obs::Metrics().GetCounter("cache.peer_hits"),
      obs::Metrics().GetCounter("cache.chunk_loads"),
      obs::Metrics().GetCounter("cache.evictions"),
      obs::Metrics().GetCounter("cache.failovers"),
      obs::Metrics().GetCounter("cache.breaker_opens"),
      obs::Metrics().GetCounter("cache.node_recoveries"),
      obs::Metrics().GetCounter("cache.corruptions_detected"),
      obs::Metrics().GetGauge("cache.bytes_cached"),
  };
  return c;
}

/// Registry mirrors of the prefetch-facing cache counters. Issue-side
/// accounting (issued/completed/cancelled) lives in the scheduler; the cache
/// sees the read side (hit/late) and the eviction side (wasted).
struct PrefetchCacheCounters {
  obs::Counter& evicted_bytes;
  obs::Gauge& pinned_chunks;
  obs::Counter& hits;
  obs::Counter& late;
  obs::Counter& wasted;
  obs::Histo& lead_time_ns;
  obs::Histo& late_stall_ns;
};

PrefetchCacheCounters& PfCounters() {
  static PrefetchCacheCounters c{
      obs::Metrics().GetCounter("cache.evicted_bytes"),
      obs::Metrics().GetGauge("cache.pinned_chunks"),
      obs::Metrics().GetCounter("prefetch.hit"),
      obs::Metrics().GetCounter("prefetch.late"),
      obs::Metrics().GetCounter("prefetch.wasted"),
      obs::Metrics().GetHistogram("prefetch.lead_time_ns"),
      obs::Metrics().GetHistogram("prefetch.late_stall_ns"),
  };
  return c;
}

/// 1 while the node's breaker is open, 0 once it has recovered.
obs::Gauge& BreakerGauge(sim::NodeId node) {
  return obs::Metrics().GetGauge("cache.breaker.state",
                                 {{"node", "n" + std::to_string(node)}});
}

/// Registry mirrors of the elastic-membership counters.
struct MembershipCacheCounters {
  obs::Counter& migrated_chunks =
      obs::Metrics().GetCounter("membership.migrated_chunks");
  obs::Counter& migrated_bytes =
      obs::Metrics().GetCounter("membership.migrated_bytes");
  obs::Counter& reown_chunks =
      obs::Metrics().GetCounter("membership.reown_chunks");
  obs::Counter& reown_skipped =
      obs::Metrics().GetCounter("cache.reown_skipped");
};

MembershipCacheCounters& MemCounters() {
  static MembershipCacheCounters c;
  return c;
}

/// Zero-copy read-path counters. `views` counts slices handed out without
/// copying; `copies` counts materializations through the Bytes-returning
/// compatibility APIs; the crc pair shows the once-per-residency memo at
/// work (skipped = checks the memo saved).
struct SliceCounters {
  obs::Counter& views = obs::Metrics().GetCounter("cache.slice.views");
  obs::Counter& copies = obs::Metrics().GetCounter("cache.slice.copies");
  obs::Counter& crc_verified =
      obs::Metrics().GetCounter("cache.slice.crc_verified");
  obs::Counter& crc_skipped =
      obs::Metrics().GetCounter("cache.slice.crc_skipped");
};

SliceCounters& SlCounters() {
  static SliceCounters c;
  return c;
}

/// Registry mirrors of the cross-task shared-tier counters. These are the
/// process-wide aggregates; the per-tenant labeled series live in
/// tenant::CacheFabric. discarded_bytes is charged even with no tier
/// attached, so the teardown waste tenancy recovers stays visible when
/// tenancy is disabled.
struct TenantCacheCounters {
  obs::Counter& adopted_chunks =
      obs::Metrics().GetCounter("tenant.adopted_chunks");
  obs::Counter& adopted_bytes =
      obs::Metrics().GetCounter("tenant.adopted_bytes");
  obs::Counter& demoted_chunks =
      obs::Metrics().GetCounter("tenant.demoted_chunks");
  obs::Counter& demoted_bytes =
      obs::Metrics().GetCounter("tenant.demoted_bytes");
  obs::Counter& discarded_bytes =
      obs::Metrics().GetCounter("tenant.discarded_bytes");
};

TenantCacheCounters& TnCounters() {
  static TenantCacheCounters c;
  return c;
}

/// Critical-path attribution for the hot read path: every phase a
/// GetFile/GetFiles request can spend virtual time in, observed as
/// durations into "read.path.*" histograms. total_ns additionally captures
/// tail exemplars (the active cache.get_file span id) so `dlcmd tail` can
/// resolve a p99 read straight to its span tree. parse_ns exists for
/// completeness: header parsing charges no virtual time under the current
/// calibration, so it records zeros — the histogram documents that the
/// phase is free, not that it is unmeasured.
struct ReadPathMetrics {
  obs::Histo& total_ns = obs::Metrics().GetHistogram("read.path.total_ns");
  obs::Histo& local_ns = obs::Metrics().GetHistogram("read.path.local_ns");
  obs::Histo& owner_wait_ns =
      obs::Metrics().GetHistogram("read.path.owner_wait_ns");
  obs::Histo& rpc_ns = obs::Metrics().GetHistogram("read.path.rpc_ns");
  obs::Histo& device_ns = obs::Metrics().GetHistogram("read.path.device_ns");
  obs::Histo& parse_ns = obs::Metrics().GetHistogram("read.path.parse_ns");
  obs::Histo& slice_ns = obs::Metrics().GetHistogram("read.path.slice_ns");
  obs::Histo& backoff_ns = obs::Metrics().GetHistogram("read.path.backoff_ns");
  obs::Histo& degraded_ns =
      obs::Metrics().GetHistogram("read.path.degraded_ns");
  obs::Counter& retries = obs::Metrics().GetCounter("read.path.retries");
};

ReadPathMetrics& RpMetrics() {
  static ReadPathMetrics m;
  return m;
}

}  // namespace

TaskCache::TaskCache(net::Fabric& fabric, core::DieselServer& server,
                     const core::MetadataSnapshot& snapshot,
                     TaskRegistry& registry, TaskCacheOptions options)
    : fabric_(fabric), server_(server), snapshot_(snapshot),
      registry_(registry), options_(options) {
  owner_nodes_ = registry_.Nodes();
  for (sim::NodeId node : owner_nodes_) {
    partitions_.emplace(node, std::make_unique<NodePartition>());
  }
}

void TaskCache::EstablishConnections() {
  std::vector<net::EndpointId> masters = registry_.Masters();
  for (const net::EndpointId& client : registry_.Members()) {
    for (const net::EndpointId& master : masters) {
      if (client == master) continue;
      fabric_.connections().Connect(client, master);
      ++connections_opened_;
    }
  }
}

Result<sim::NodeId> TaskCache::OwnerNodeOfChunk(size_t chunk_index) const {
  if (membership_.load(std::memory_order_acquire) != nullptr) {
    // Attached mode: the ownership snapshot moves in lock-step with the
    // migration records, so a chunk's owner and its in-flight move are
    // always consistent under one lock.
    std::lock_guard<std::mutex> lock(migration_mutex_);
    if (chunk_index < chunk_owner_.size()) return chunk_owner_[chunk_index];
    return Status::FailedPrecondition("chunk index past ownership map");
  }
  if (owner_nodes_.empty())
    return Status::FailedPrecondition("no task nodes registered");
  return owner_nodes_[chunk_index % owner_nodes_.size()];
}

void TaskCache::AttachMembership(membership::MembershipTable& table) {
  {
    std::lock_guard<std::mutex> lock(migration_mutex_);
    chunk_owner_.resize(snapshot_.chunks().size(), sim::kInvalidNode);
    for (size_t ci = 0; ci < chunk_owner_.size(); ++ci) {
      auto owner = table.OwnerOfChunk(ci);
      if (owner.ok()) chunk_owner_[ci] = *owner;
    }
  }
  membership_.store(&table, std::memory_order_release);
  table.Subscribe(this);
}

std::vector<sim::NodeId> TaskCache::CurrentOwnerNodes() const {
  if (membership::MembershipTable* t =
          membership_.load(std::memory_order_acquire)) {
    return t->ActiveNodes();
  }
  return owner_nodes_;
}

TaskCache::NodePartition& TaskCache::PartitionFor(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  auto it = partitions_.find(node);
  if (it == partitions_.end()) {
    it = partitions_.emplace(node, std::make_unique<NodePartition>()).first;
  }
  return *it->second;
}

const TaskCache::NodePartition* TaskCache::FindPartition(
    sim::NodeId node) const {
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  auto it = partitions_.find(node);
  return it == partitions_.end() ? nullptr : it->second.get();
}

Nanos TaskCache::last_transition_end() const {
  std::lock_guard<std::mutex> lock(migration_mutex_);
  return last_transition_end_;
}

size_t TaskCache::migrations_in_flight() const {
  std::lock_guard<std::mutex> lock(migration_mutex_);
  return migrations_.size();
}

Result<core::FileSlice> TaskCache::SliceFile(CachedChunk& chunk,
                                             const core::FileMeta& meta) {
  uint64_t begin = chunk.buffer.header_len() + meta.offset;
  if (begin + meta.length > chunk.buffer.size())
    return Status::Corruption("file range past cached chunk end: " +
                              meta.full_name);
  core::FileSlice slice =
      core::FileSlice::FromBuffer(chunk.buffer, begin, meta.length);
  // End-to-end integrity: the chunk builder stamped each file's CRC32C into
  // the metadata; a cached copy that no longer matches is treated as a miss
  // (metas built by hand in tests carry crc 0 and skip the check). The blob
  // is immutable for its whole residency, so each file is scanned at most
  // once — later reads hit the verified memo.
  if (meta.crc != 0) {
    const size_t fi = meta.index_in_chunk;
    if (fi < chunk.verified.size() && chunk.verified[fi]) {
      SlCounters().crc_skipped.Inc();
    } else {
      if (Crc32c(slice.view()) != meta.crc)
        return Status::Corruption("cached file checksum mismatch: " +
                                  meta.full_name);
      if (fi >= chunk.verified.size()) chunk.verified.resize(fi + 1, false);
      chunk.verified[fi] = true;
      SlCounters().crc_verified.Inc();
    }
  }
  SlCounters().views.Inc();
  return slice;
}

size_t TaskCache::PickVictimLocked(const NodePartition& part,
                                   bool ignore_pins) const {
  const EvictionOracle* oracle = nullptr;
  {
    std::lock_guard<std::mutex> lock(oracle_mutex_);
    oracle = oracle_;
  }
  const uint64_t cursor = cursor_.load(std::memory_order_relaxed);
  size_t best = static_cast<size_t>(-1);
  uint64_t best_dist = 0;
  for (size_t i = 0; i < part.fifo.size(); ++i) {
    size_t ci = part.fifo[i];
    if (!ignore_pins && part.pinned.count(ci) > 0) continue;
    if (oracle == nullptr) return i;  // FIFO: first unpinned entry
    uint64_t dist = oracle->NextAccessAfter(ci, cursor);
    // A dead chunk (kNever) always wins; ties keep the earliest-inserted.
    if (dist == EvictionOracle::kNever) return i;
    if (best == static_cast<size_t>(-1) || dist > best_dist) {
      best = i;
      best_dist = dist;
    }
  }
  return best;
}

void TaskCache::EvictAtLocked(NodePartition& part, size_t victim) {
  size_t ci = part.fifo[victim];
  part.fifo.erase(part.fifo.begin() + static_cast<ptrdiff_t>(victim));
  auto it = part.chunks.find(ci);
  if (it == part.chunks.end()) return;
  uint64_t size = it->second.buffer.size();
  bool wasted = it->second.prefetched && !it->second.accessed;
  part.bytes -= size;
  part.chunks.erase(it);
  Counters().evictions.Inc();
  Counters().bytes_cached.Add(-static_cast<double>(size));
  PfCounters().evicted_bytes.Inc(size);
  if (wasted) PfCounters().wasted.Inc();
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++stats_.evictions;
  stats_.evicted_bytes += size;
  stats_.bytes_cached -= size;
  if (wasted) ++stats_.prefetch_wasted;
}

TaskCache::InsertResult TaskCache::InsertChunk(sim::NodeId owner,
                                               size_t chunk_index,
                                               core::ChunkBuffer buffer,
                                               bool prefetched, Nanos ready_at,
                                               std::vector<bool> verified) {
  NodePartition& part = PartitionFor(owner);
  std::lock_guard<std::mutex> lock(part.mutex);
  if (part.chunks.count(chunk_index) > 0) return InsertResult::kAlreadyResident;
  uint64_t size = buffer.size();
  if (options_.per_node_capacity_bytes != 0) {
    while (part.bytes + size > options_.per_node_capacity_bytes &&
           !part.fifo.empty()) {
      size_t victim = PickVictimLocked(part);
      if (victim == static_cast<size_t>(-1)) break;  // everything is pinned
      EvictAtLocked(part, victim);
    }
    if (part.bytes + size > options_.per_node_capacity_bytes) {
      if (prefetched) return InsertResult::kDenied;
      // Demand outranks prefetch: when only pinned chunks are left, a
      // foreground miss still gets cached — otherwise a pin-saturated
      // partition would send every further read of this chunk back to the
      // backend for as long as the pins are held.
      while (part.bytes + size > options_.per_node_capacity_bytes &&
             !part.fifo.empty()) {
        EvictAtLocked(part, PickVictimLocked(part, /*ignore_pins=*/true));
      }
      if (part.bytes + size > options_.per_node_capacity_bytes)
        return InsertResult::kDenied;  // single blob exceeds capacity
    }
  }
  CachedChunk cc;
  cc.buffer = std::move(buffer);
  cc.ready_at = ready_at;
  cc.prefetched = prefetched;
  cc.verified = std::move(verified);
  part.chunks.emplace(chunk_index, std::move(cc));
  part.fifo.push_back(chunk_index);
  part.bytes += size;
  Counters().bytes_cached.Add(static_cast<double>(size));
  std::lock_guard<std::mutex> slock(stats_mutex_);
  stats_.bytes_cached += size;
  return InsertResult::kInserted;
}

Result<Bytes> TaskCache::FetchChunkBlob(sim::VirtualClock& clock,
                                        sim::NodeId reader, size_t chunk_index,
                                        uint32_t* header_len) {
  const core::ChunkId& id = snapshot_.chunks().at(chunk_index);
  const Nanos device0 = clock.now();
  DIESEL_ASSIGN_OR_RETURN(
      Bytes blob,
      options_.retry.RunResult<Bytes>(clock, [&]() -> Result<Bytes> {
        return server_.ReadChunk(clock, reader, snapshot_.dataset(), id);
      }));
  RpMetrics().device_ns.Observe(static_cast<double>(clock.now() - device0));
  if (fabric_.tracer() != nullptr) {
    obs::ScopedSpan::NoteCurrent(
        fabric_.tracer(), clock.now(),
        "phase.device_read ns=" + std::to_string(clock.now() - device0));
  }
  const Nanos parse0 = clock.now();
  DIESEL_ASSIGN_OR_RETURN(core::ChunkView view, core::ChunkView::Parse(blob));
  RpMetrics().parse_ns.Observe(static_cast<double>(clock.now() - parse0));
  *header_len = view.header_len();
  // The fabric never sees payloads, so scheduled corruption events land
  // here, on the chunk-fetch path; detection is CRC-driven in SliceFile.
  if (net::FaultInjector* inj = fabric_.fault_injector()) {
    if (inj->ConsumeChunkCorruption(chunk_index)) {
      inj->CorruptPayload(blob, *header_len, chunk_index);
      obs::ScopedSpan::NoteCurrent(
          fabric_.tracer(), clock.now(),
          "fault.corrupt chunk=" + std::to_string(chunk_index));
      obs::Flight().Record(obs::FlightEventKind::kFault, clock.now(),
                           "payload corruption: chunk " +
                               std::to_string(chunk_index));
    }
  }
  return blob;
}

Status TaskCache::EnsureLoaded(sim::VirtualClock& clock, sim::NodeId owner,
                               size_t chunk_index) {
  NodePartition& part = PartitionFor(owner);
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    if (part.chunks.count(chunk_index) > 0) return Status::Ok();
  }
  SharedCacheTier* tier = shared_tier_.load(std::memory_order_acquire);
  if (tier != nullptr) {
    // Warm start: another task already holds these bytes — adopt the shared
    // buffer (a refcount bump plus the simulated transfer) instead of
    // re-reading the object store. Adoptions are NOT chunk_loads: the
    // backend never saw this request.
    auto adopted = tier->Adopt(clock, owner, chunk_index);
    if (adopted.ok()) {
      CountAdoption(adopted->buffer.size());
      InsertChunk(owner, chunk_index, std::move(adopted->buffer),
                  /*prefetched=*/false, /*ready_at=*/0,
                  std::move(adopted->verified));
      return Status::Ok();
    }
  }
  // Miss: pull the whole chunk from the server (on-demand policy / recovery).
  uint32_t header_len = 0;
  DIESEL_ASSIGN_OR_RETURN(Bytes blob,
                          FetchChunkBlob(clock, owner, chunk_index, &header_len));
  Counters().chunk_loads.Inc();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.chunk_loads;
  }
  core::ChunkBuffer buffer = core::ChunkBuffer::Wrap(std::move(blob), header_len);
  if (tier != nullptr) tier->Publish(owner, chunk_index, buffer, {}, clock.now());
  InsertChunk(owner, chunk_index, std::move(buffer));
  return Status::Ok();
}

void TaskCache::CountAdoption(uint64_t bytes) {
  TnCounters().adopted_chunks.Inc();
  TnCounters().adopted_bytes.Inc(bytes);
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++stats_.adopted_chunks;
  stats_.adopted_bytes += bytes;
}

Result<core::FileSlice> TaskCache::ReadFromPartition(sim::VirtualClock& clock,
                                                     sim::NodeId owner,
                                                     size_t chunk_index,
                                                     const core::FileMeta& meta) {
  NodePartition& part = PartitionFor(owner);
  core::ChunkBuffer corrupt_evicted;
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    auto it = part.chunks.find(chunk_index);
    if (it != part.chunks.end()) {
      CachedChunk& cc = it->second;
      if (cc.ready_at > clock.now()) {
        // The fill is still in flight at this read's arrival: wait out the
        // remainder. Only the first read after the fill scores it.
        Nanos stall = cc.ready_at - clock.now();
        clock.AdvanceTo(cc.ready_at);
        RpMetrics().owner_wait_ns.Observe(static_cast<double>(stall));
        if (fabric_.tracer() != nullptr) {
          obs::ScopedSpan::NoteCurrent(
              fabric_.tracer(), clock.now(),
              "phase.owner_wait ns=" + std::to_string(stall));
        }
        if (cc.prefetched && !cc.accessed) {
          PfCounters().late.Inc();
          PfCounters().late_stall_ns.Observe(static_cast<double>(stall));
          std::lock_guard<std::mutex> slock(stats_mutex_);
          ++stats_.prefetch_late;
        }
      } else if (cc.prefetched && !cc.accessed) {
        PfCounters().hits.Inc();
        PfCounters().lead_time_ns.Observe(
            static_cast<double>(clock.now() - cc.ready_at));
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.prefetch_hits;
      }
      cc.accessed = true;
      Result<core::FileSlice> sliced = SliceFile(cc, meta);
      if (!sliced.status().IsCorruption()) return sliced;
      // Cached copy failed its checksum: evict it and fall through to a
      // fresh fetch below. Remember the blob so the shared tier's copy —
      // the same bytes if this chunk was ever published/adopted — can be
      // invalidated too.
      corrupt_evicted = it->second.buffer;
      part.bytes -= it->second.buffer.size();
      part.fifo.erase(std::remove(part.fifo.begin(), part.fifo.end(),
                                  chunk_index),
                      part.fifo.end());
      part.chunks.erase(it);
      Counters().corruptions.Inc();
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.corruptions_detected;
    }
  }
  SharedCacheTier* tier = shared_tier_.load(std::memory_order_acquire);
  if (tier != nullptr && corrupt_evicted) {
    // The evicted copy's bytes may also be resident in the shared tier
    // (publish is a refcount share): purge them so the adopt below — and
    // every other task's — doesn't hand the corruption straight back.
    tier->Invalidate(chunk_index, corrupt_evicted);
  }
  if (tier != nullptr) {
    // Warm start before touching the backend: adopt a copy another task has
    // resident. The adopted blob carries its CRC memo; an adopted copy that
    // fails its checksum falls through to a fresh backend fetch exactly
    // like a corrupt cached one.
    auto adopted = tier->Adopt(clock, owner, chunk_index);
    if (adopted.ok()) {
      CachedChunk local;
      local.buffer = std::move(adopted->buffer);
      local.verified = std::move(adopted->verified);
      Result<core::FileSlice> content = SliceFile(local, meta);
      if (!content.status().IsCorruption()) {
        DIESEL_RETURN_IF_ERROR(content.status());
        CountAdoption(local.buffer.size());
        InsertChunk(owner, chunk_index, std::move(local.buffer),
                    /*prefetched=*/false, /*ready_at=*/0,
                    std::move(local.verified));
        return content;
      }
      // Adopted copy is corrupt: purge it from the shared tier so other
      // adopters stop paying the transfer + scan + refetch for the same
      // bad blob, then fall through to a fresh backend fetch.
      tier->Invalidate(chunk_index, local.buffer);
      Counters().corruptions.Inc();
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.corruptions_detected;
    }
  }
  // Miss: fetch the chunk, slice from the local copy (immune to concurrent
  // eviction), then install it for subsequent readers. A corrupted fetch is
  // detected by the slice CRC and re-fetched once (injected corruption is
  // one-shot, so the second copy is clean; a persistently corrupt chunk
  // still surfaces Corruption).
  for (int fetch = 0;; ++fetch) {
    uint32_t header_len = 0;
    DIESEL_ASSIGN_OR_RETURN(
        Bytes blob, FetchChunkBlob(clock, owner, chunk_index, &header_len));
    CachedChunk local;
    local.buffer = core::ChunkBuffer::Wrap(std::move(blob), header_len);
    Result<core::FileSlice> content = SliceFile(local, meta);
    if (content.status().IsCorruption() && fetch == 0) {
      Counters().corruptions.Inc();
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.corruptions_detected;
      continue;
    }
    DIESEL_RETURN_IF_ERROR(content.status());
    Counters().chunk_loads.Inc();
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.chunk_loads;
    }
    // Install the shared buffer along with the CRC memo of the file just
    // verified — the resident copy is the same immutable bytes.
    if (tier != nullptr) {
      tier->Publish(owner, chunk_index, local.buffer, local.verified,
                    clock.now());
    }
    InsertChunk(owner, chunk_index, std::move(local.buffer),
                /*prefetched=*/false, /*ready_at=*/0,
                std::move(local.verified));
    return content;
  }
}

Result<Nanos> TaskCache::PreloadPartition(sim::NodeId node, Nanos start) {
  const size_t streams = std::max<uint32_t>(1, options_.preload_streams);
  std::vector<size_t> mine;
  for (size_t ci = 0; ci < snapshot_.chunks().size(); ++ci) {
    DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner, OwnerNodeOfChunk(ci));
    if (owner == node) mine.push_back(ci);
  }
  std::vector<sim::VirtualClock> clocks(streams, sim::VirtualClock(start));
  for (size_t next = 0; next < mine.size(); ++next) {
    // Earliest-clock stream fetches the next chunk (closed loop).
    size_t s = 0;
    for (size_t k = 1; k < streams; ++k) {
      if (clocks[k].now() < clocks[s].now()) s = k;
    }
    DIESEL_RETURN_IF_ERROR(EnsureLoaded(clocks[s], node, mine[next]));
  }
  Nanos finish = start;
  for (const auto& c : clocks) finish = std::max(finish, c.now());
  return finish;
}

Result<Nanos> TaskCache::Preload(Nanos start) {
  // Each master pulls its partition with `preload_streams` concurrent
  // fetch streams; nodes work in parallel so the makespan is the slowest
  // node's finish time.
  Nanos makespan = start;
  for (sim::NodeId node : CurrentOwnerNodes()) {
    DIESEL_ASSIGN_OR_RETURN(Nanos finish, PreloadPartition(node, start));
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

Result<Bytes> TaskCache::GetFile(sim::VirtualClock& clock,
                                 net::EndpointId requester,
                                 const core::FileMeta& meta) {
  DIESEL_ASSIGN_OR_RETURN(core::FileSlice slice,
                          GetFileSlice(clock, requester, meta));
  SlCounters().copies.Inc();
  return slice.ToBytes();
}

Result<core::FileSlice> TaskCache::GetFileSlice(sim::VirtualClock& clock,
                                                net::EndpointId requester,
                                                const core::FileMeta& meta) {
  obs::ScopedSpan span(fabric_.tracer(), "cache.get_file", clock,
                       requester.node);
  const Nanos t0 = clock.now();
  Result<core::FileSlice> result = GetFileSliceImpl(clock, requester, meta,
                                                    span);
  // End-to-end request latency, with the span id riding along as a tail
  // exemplar (span.id() is 0 without a tracer, which captures nothing).
  RpMetrics().total_ns.Observe(static_cast<double>(clock.now() - t0),
                               span.id(), static_cast<double>(clock.now()));
  return result;
}

Result<core::FileSlice> TaskCache::GetFileSliceImpl(sim::VirtualClock& clock,
                                                    net::EndpointId requester,
                                                    const core::FileMeta& meta,
                                                    obs::ScopedSpan& span) {
  size_t chunk_index = snapshot_.ChunkIndex(meta.chunk);
  if (chunk_index == static_cast<size_t>(-1))
    return Status::NotFound("chunk not in snapshot: " + meta.chunk.Encoded());
  // The serving owner indirects through in-flight migrations: until a move
  // lands, the old owner keeps answering for the chunk (graceful
  // degradation — a rescale never stalls the read path).
  DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner,
                          ServingOwner(chunk_index, clock.now()));
  if (span.active()) {
    span.Note("phase.snapshot_lookup chunk=" + std::to_string(chunk_index) +
              " owner=n" + std::to_string(owner));
  }

  if (owner == requester.node) {
    // Local partition: memory-bus copy.
    const Nanos local0 = clock.now();
    DIESEL_ASSIGN_OR_RETURN(core::FileSlice content,
                            ReadFromPartition(clock, owner, chunk_index, meta));
    const Nanos slice0 = clock.now();
    Nanos t = fabric_.cluster().node(owner).membus().Serve(clock.now(),
                                                           meta.length);
    clock.AdvanceTo(t);
    RpMetrics().slice_ns.Observe(static_cast<double>(clock.now() - slice0));
    RpMetrics().local_ns.Observe(static_cast<double>(clock.now() - local0));
    Counters().local_hits.Inc();
    span.Note("cache.local_hit");
    if (span.active()) {
      span.Note("phase.slice ns=" + std::to_string(clock.now() - slice0));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.local_hits;
    }
    return content;
  }

  // One-hop fetch from the owner's master client. The owner sits behind a
  // per-node circuit breaker: transient failures retry with backoff; an
  // unreachable owner opens the breaker (its in-RAM partition is presumed
  // lost) and the read degrades to a direct server fetch.
  CircuitBreaker& breaker = BreakerFor(owner);
  const RetryPolicy& retry = options_.retry;
  const uint32_t max_attempts = std::max<uint32_t>(1, retry.max_attempts);
  const Nanos start = clock.now();
  Status last = Status::Unavailable("peer fetch not attempted");
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!breaker.AllowRequest(clock.now())) {
      last = Status::Unavailable("circuit open: owner node " +
                                 std::to_string(owner));
      break;
    }
    Result<core::FileSlice> content = Status::Internal("unset");
    const Nanos rpc0 = clock.now();
    if (attempt > 1) RpMetrics().retries.Inc();
    Status call = fabric_.Call(
        clock, requester.node, owner, kPeerRequestBytes, meta.length,
        [&](Nanos arrival) {
          sim::VirtualClock peer(arrival);
          content = ReadFromPartition(peer, owner, chunk_index, meta);
          const Nanos slice0 = peer.now();
          Nanos t = fabric_.cluster().node(owner).membus().Serve(peer.now(),
                                                                 meta.length);
          peer.AdvanceTo(t);
          RpMetrics().slice_ns.Observe(static_cast<double>(peer.now() - slice0));
          return peer.now();
        });
    RpMetrics().rpc_ns.Observe(static_cast<double>(clock.now() - rpc0));
    if (span.active()) {
      span.Note("phase.rpc attempt=" + std::to_string(attempt) +
                " ns=" + std::to_string(clock.now() - rpc0));
    }
    if (call.ok() && !content.status().IsUnavailable()) {
      if (breaker.OnSuccess(clock.now()) ==
          CircuitBreaker::Transition::kRecovered) {
        span.Note("breaker.recovered node=" + std::to_string(owner));
        obs::Flight().Record(obs::FlightEventKind::kBreaker, clock.now(),
                             "breaker recovered: n" + std::to_string(owner),
                             span.id());
        OnOwnerRecovered(owner, clock.now());
      }
      if (content.ok()) {
        Counters().peer_hits.Inc();
        span.Note("cache.peer_hit");
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.peer_hits;
      }
      return content;
    }
    last = call.ok() ? content.status() : call;
    // A flap of the requester's own node also fails the call; that says
    // nothing about the owner, so only remote failures charge its breaker
    // (a held half-open probe slot must still report its outcome).
    if (fabric_.NodeAvailable(requester.node, clock.now()) ||
        breaker.state() == CircuitBreaker::State::kHalfOpen) {
      if (breaker.OnFailure(clock.now()) ==
          CircuitBreaker::Transition::kOpened) {
        // Owner presumed crashed: what it cached in RAM is gone.
        DropNode(owner);
        Counters().breaker_opens.Inc();
        BreakerGauge(owner).Set(1.0);
        span.Note("breaker.open node=" + std::to_string(owner));
        obs::Flight().Record(obs::FlightEventKind::kBreaker, clock.now(),
                             "breaker open: n" + std::to_string(owner),
                             span.id());
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.breaker_opens;
      }
    }
    if (attempt >= max_attempts) break;
    Nanos wait = retry.BackoffBefore(attempt);
    if (retry.deadline_budget != 0 &&
        clock.now() - start + wait > retry.deadline_budget) {
      break;
    }
    RpMetrics().backoff_ns.Observe(static_cast<double>(wait));
    if (span.active()) {
      span.Note("phase.backoff ns=" + std::to_string(wait));
    }
    clock.Advance(wait);
  }
  if (!options_.degraded_reads) return last;
  Counters().failovers.Inc();
  span.Note("cache.degraded_read");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failovers;
  }
  const Nanos degraded0 = clock.now();
  DIESEL_ASSIGN_OR_RETURN(Bytes content, DegradedRead(clock, requester, meta));
  RpMetrics().degraded_ns.Observe(static_cast<double>(clock.now() - degraded0));
  if (span.active()) {
    span.Note("phase.degraded ns=" + std::to_string(clock.now() - degraded0));
  }
  return core::FileSlice::Own(std::move(content));
}

Result<std::vector<core::FileSlice>> TaskCache::GetFiles(
    sim::VirtualClock& clock, net::EndpointId requester,
    std::span<const core::FileMeta> metas) {
  std::vector<core::FileSlice> out(metas.size());
  if (metas.empty()) return out;
  obs::ScopedSpan span(fabric_.tracer(), "cache.get_files", clock,
                       requester.node);
  span.Note("files=" + std::to_string(metas.size()));

  // Resolve every file's serving owner up front, grouping remote files per
  // owner node (std::map: deterministic owner order). Local files and
  // singleton groups take the per-file path — the batch machinery only
  // engages where there is overhead to amortize.
  std::vector<BatchSub> local;
  std::map<sim::NodeId, std::vector<BatchSub>> remote;
  for (size_t i = 0; i < metas.size(); ++i) {
    size_t chunk_index = snapshot_.ChunkIndex(metas[i].chunk);
    if (chunk_index == static_cast<size_t>(-1))
      return Status::NotFound("chunk not in snapshot: " +
                              metas[i].chunk.Encoded());
    DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner,
                            ServingOwner(chunk_index, clock.now()));
    if (owner == requester.node) {
      local.push_back(BatchSub{i, chunk_index});
    } else {
      remote[owner].push_back(BatchSub{i, chunk_index});
    }
  }

  for (const BatchSub& sub : local) {
    DIESEL_ASSIGN_OR_RETURN(out[sub.pos],
                            GetFileSlice(clock, requester, metas[sub.pos]));
  }
  for (const auto& [owner, subs] : remote) {
    if (subs.size() < 2) {
      DIESEL_ASSIGN_OR_RETURN(
          out[subs[0].pos], GetFileSlice(clock, requester, metas[subs[0].pos]));
      continue;
    }
    std::vector<Result<core::FileSlice>> got(subs.size(),
                                             Status::Internal("unset"));
    FetchOwnerBatch(clock, requester, owner, subs, metas, got);
    for (size_t j = 0; j < subs.size(); ++j) {
      if (got[j].ok()) {
        out[subs[j].pos] = std::move(got[j].value());
        continue;
      }
      // Unserved or failed sub-request: the per-file path owns the
      // retry/breaker/degraded handling (and reproduces any hard error,
      // e.g. persistent corruption, exactly as an unbatched run would).
      DIESEL_ASSIGN_OR_RETURN(
          out[subs[j].pos], GetFileSlice(clock, requester, metas[subs[j].pos]));
    }
  }
  return out;
}

void TaskCache::FetchOwnerBatch(sim::VirtualClock& clock,
                                net::EndpointId requester, sim::NodeId owner,
                                std::span<const BatchSub> subs,
                                std::span<const core::FileMeta> metas,
                                std::vector<Result<core::FileSlice>>& out) {
  obs::ScopedSpan span(fabric_.tracer(), "cache.multi_get", clock,
                       requester.node);
  span.Note("owner=n" + std::to_string(owner) +
            " k=" + std::to_string(subs.size()));
  uint64_t resp_bytes = 0;
  for (const BatchSub& sub : subs) resp_bytes += metas[sub.pos].length;

  CircuitBreaker& breaker = BreakerFor(owner);
  const RetryPolicy& retry = options_.retry;
  const uint32_t max_attempts = std::max<uint32_t>(1, retry.max_attempts);
  const Nanos start = clock.now();
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!breaker.AllowRequest(clock.now())) return;  // fallback handles it
    const Nanos rpc0 = clock.now();
    if (attempt > 1) RpMetrics().retries.Inc();
    Status call = fabric_.CallBatch(
        clock, requester.node, owner, subs.size(),
        kPeerRequestBytes * subs.size(), resp_bytes, [&](Nanos arrival) {
          sim::VirtualClock peer(arrival);
          for (size_t j = 0; j < subs.size(); ++j) {
            const core::FileMeta& meta = metas[subs[j].pos];
            out[j] = ReadFromPartition(peer, owner, subs[j].chunk_index, meta);
            const Nanos slice0 = peer.now();
            Nanos t = fabric_.cluster().node(owner).membus().Serve(
                peer.now(), meta.length);
            peer.AdvanceTo(t);
            RpMetrics().slice_ns.Observe(
                static_cast<double>(peer.now() - slice0));
          }
          return peer.now();
        });
    RpMetrics().rpc_ns.Observe(static_cast<double>(clock.now() - rpc0));
    if (span.active()) {
      span.Note("phase.rpc attempt=" + std::to_string(attempt) +
                " ns=" + std::to_string(clock.now() - rpc0));
    }
    if (call.ok()) {
      if (breaker.OnSuccess(clock.now()) ==
          CircuitBreaker::Transition::kRecovered) {
        span.Note("breaker.recovered node=" + std::to_string(owner));
        obs::Flight().Record(obs::FlightEventKind::kBreaker, clock.now(),
                             "breaker recovered: n" + std::to_string(owner),
                             span.id());
        OnOwnerRecovered(owner, clock.now());
      }
      uint64_t hits = 0;
      for (const auto& r : out) {
        if (r.ok()) ++hits;
      }
      if (hits > 0) {
        Counters().peer_hits.Inc(hits);
        span.Note("cache.peer_hits=" + std::to_string(hits));
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.peer_hits += hits;
      }
      return;
    }
    // The whole exchange failed (drop/flap): every sub-request failed at
    // once. Same breaker discipline as the per-file path.
    for (auto& r : out) r = Status::Internal("unset");
    if (fabric_.NodeAvailable(requester.node, clock.now()) ||
        breaker.state() == CircuitBreaker::State::kHalfOpen) {
      if (breaker.OnFailure(clock.now()) ==
          CircuitBreaker::Transition::kOpened) {
        DropNode(owner);
        Counters().breaker_opens.Inc();
        BreakerGauge(owner).Set(1.0);
        span.Note("breaker.open node=" + std::to_string(owner));
        obs::Flight().Record(obs::FlightEventKind::kBreaker, clock.now(),
                             "breaker open: n" + std::to_string(owner),
                             span.id());
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.breaker_opens;
      }
    }
    if (attempt >= max_attempts) return;
    Nanos wait = retry.BackoffBefore(attempt);
    if (retry.deadline_budget != 0 &&
        clock.now() - start + wait > retry.deadline_budget) {
      return;
    }
    RpMetrics().backoff_ns.Observe(static_cast<double>(wait));
    if (span.active()) {
      span.Note("phase.backoff ns=" + std::to_string(wait));
    }
    clock.Advance(wait);
  }
}

CircuitBreaker& TaskCache::BreakerFor(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  auto it = breakers_.find(node);
  if (it == breakers_.end())
    it = breakers_.try_emplace(node, options_.breaker).first;
  return it->second;
}

Result<Bytes> TaskCache::DegradedRead(sim::VirtualClock& clock,
                                      net::EndpointId requester,
                                      const core::FileMeta& meta) {
  return options_.retry.RunResult<Bytes>(clock, [&]() -> Result<Bytes> {
    return server_.ReadFile(clock, requester.node, snapshot_.dataset(),
                            meta.full_name);
  });
}

void TaskCache::OnOwnerRecovered(sim::NodeId owner, Nanos now) {
  Counters().node_recoveries.Inc();
  BreakerGauge(owner).Set(0.0);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.node_recoveries;
  }
  if (options_.policy == CachePolicy::kOneshot) {
    // Chunk-granular re-own: repopulate the recovered node's partition on a
    // detached clock — the reload overlaps the requesters' continued reads,
    // which keep being served (degraded) until chunks come back. Chunks the
    // Belady oracle declares dead for the rest of the epoch are skipped:
    // bytes evicted during the outage that nobody will read again are not
    // worth re-owning.
    Result<Nanos> reload = ReownChunks(owner, OwnedChunkList(owner), now);
    (void)reload;
  }
}

std::vector<size_t> TaskCache::OwnedChunkList(sim::NodeId node) const {
  std::vector<size_t> mine;
  for (size_t ci = 0; ci < snapshot_.chunks().size(); ++ci) {
    auto owner = OwnerNodeOfChunk(ci);
    if (owner.ok() && *owner == node) mine.push_back(ci);
  }
  return mine;
}

Result<Nanos> TaskCache::ReownChunks(sim::NodeId node,
                                     const std::vector<size_t>& chunks,
                                     Nanos start) {
  const EvictionOracle* oracle = nullptr;
  {
    std::lock_guard<std::mutex> lock(oracle_mutex_);
    oracle = oracle_;
  }
  const uint64_t cursor = cursor_.load(std::memory_order_relaxed);
  const size_t streams = std::max<uint32_t>(1, options_.preload_streams);
  std::vector<sim::VirtualClock> clocks(streams, sim::VirtualClock(start));
  uint64_t loaded = 0;
  uint64_t skipped = 0;
  for (size_t ci : chunks) {
    if (oracle != nullptr &&
        oracle->NextAccessAfter(ci, cursor) == EvictionOracle::kNever) {
      ++skipped;
      continue;
    }
    if (ChunkResident(ci)) continue;
    size_t s = 0;
    for (size_t k = 1; k < streams; ++k) {
      if (clocks[k].now() < clocks[s].now()) s = k;
    }
    DIESEL_RETURN_IF_ERROR(EnsureLoaded(clocks[s], node, ci));
    ++loaded;
  }
  if (loaded > 0) {
    MemCounters().reown_chunks.Inc(loaded);
    obs::Metrics()
        .GetCounter("cache.reown_chunks",
                    {{"node", "n" + std::to_string(node)}})
        .Inc(loaded);
  }
  if (skipped > 0) MemCounters().reown_skipped.Inc(skipped);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.reown_chunks += loaded;
    stats_.reown_skipped += skipped;
  }
  Nanos finish = start;
  for (const auto& c : clocks) finish = std::max(finish, c.now());
  return finish;
}

Result<sim::NodeId> TaskCache::ServingOwner(size_t chunk_index, Nanos now) {
  if (membership_.load(std::memory_order_acquire) == nullptr)
    return OwnerNodeOfChunk(chunk_index);
  sim::NodeId owner;
  sim::NodeId from = sim::kInvalidNode;
  {
    std::lock_guard<std::mutex> lock(migration_mutex_);
    if (chunk_index >= chunk_owner_.size())
      return Status::FailedPrecondition("chunk index past ownership map");
    owner = chunk_owner_[chunk_index];
    auto it = migrations_.find(chunk_index);
    if (it != migrations_.end()) {
      if (now < it->second.ready_at) return it->second.from;
      // The move landed: the new owner's copy is readable, so the source
      // copy is redundant from here on.
      from = it->second.from;
      migrations_.erase(it);
    }
  }
  if (from != sim::kInvalidNode) FinalizeMigration(chunk_index, from);
  return owner;
}

void TaskCache::FinalizeMigration(size_t chunk_index, sim::NodeId from) {
  NodePartition& part = PartitionFor(from);
  uint64_t freed = 0;
  bool wasted = false;
  bool unpinned = false;
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    auto it = part.chunks.find(chunk_index);
    if (it == part.chunks.end()) return;
    freed = it->second.buffer.size();
    wasted = it->second.prefetched && !it->second.accessed;
    part.fifo.erase(
        std::remove(part.fifo.begin(), part.fifo.end(), chunk_index),
        part.fifo.end());
    part.bytes -= freed;
    part.chunks.erase(it);
    unpinned = part.pinned.erase(chunk_index) > 0;
  }
  // Dropping the source copy is not an eviction (the chunk is still
  // resident, on its new owner) — only the byte accounting moves.
  Counters().bytes_cached.Add(-static_cast<double>(freed));
  if (wasted) PfCounters().wasted.Inc();
  if (unpinned) PfCounters().pinned_chunks.Add(-1.0);
  std::lock_guard<std::mutex> slock(stats_mutex_);
  stats_.bytes_cached -= freed;
  if (wasted) ++stats_.prefetch_wasted;
  if (unpinned) --stats_.pinned_chunks;
}

void TaskCache::OnMembershipChange(const membership::MembershipChange& change) {
  using membership::ChangeKind;
  switch (change.kind) {
    case ChangeKind::kBootstrap: {
      // (Re)build the ownership snapshot; nothing is resident to move yet.
      membership::MembershipTable* table =
          membership_.load(std::memory_order_acquire);
      if (table == nullptr) return;
      std::lock_guard<std::mutex> lock(migration_mutex_);
      chunk_owner_.resize(snapshot_.chunks().size(), sim::kInvalidNode);
      for (size_t ci = 0; ci < chunk_owner_.size(); ++ci) {
        auto owner = table->OwnerOfChunk(ci);
        if (owner.ok()) chunk_owner_[ci] = *owner;
      }
      return;
    }
    case ChangeKind::kJoin:
    case ChangeKind::kRecover:
    case ChangeKind::kDrainStart:
    case ChangeKind::kCrash:
      if (change.kind == ChangeKind::kCrash) DropNode(change.node);
      MigrateForChange(change);
      return;
    case ChangeKind::kDrainComplete: {
      // Finalize every move the drained node still sourced (the copies on
      // the new owners carry their own ready_at, so a too-early read just
      // waits out the remainder), then drop whatever it still held.
      std::vector<size_t> finalize;
      {
        std::lock_guard<std::mutex> lock(migration_mutex_);
        for (auto it = migrations_.begin(); it != migrations_.end();) {
          if (it->second.from == change.node) {
            finalize.push_back(it->first);
            it = migrations_.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (size_t ci : finalize) FinalizeMigration(ci, change.node);
      DropNode(change.node);
      return;
    }
  }
}

void TaskCache::MigrateForChange(const membership::MembershipChange& change) {
  membership::MembershipTable* table =
      membership_.load(std::memory_order_acquire);
  if (table == nullptr) return;
  const bool crash = change.kind == membership::ChangeKind::kCrash;
  const Nanos start = change.at;

  struct Move {
    size_t ci;
    sim::NodeId from;
    sim::NodeId to;
  };
  std::vector<Move> moves;
  {
    std::lock_guard<std::mutex> lock(migration_mutex_);
    chunk_owner_.resize(snapshot_.chunks().size(), sim::kInvalidNode);
    for (size_t ci = 0; ci < chunk_owner_.size(); ++ci) {
      auto owner = table->OwnerOfChunk(ci);
      if (!owner.ok()) continue;
      if (*owner != chunk_owner_[ci]) {
        moves.push_back(Move{ci, chunk_owner_[ci], *owner});
        chunk_owner_[ci] = *owner;
      }
    }
    if (crash) {
      // In-flight moves touching the crashed node are dead: its source
      // copies are gone and copies headed to it fell with the partition.
      for (auto it = migrations_.begin(); it != migrations_.end();) {
        if (it->second.from == change.node || it->second.to == change.node) {
          it = migrations_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  if (!moves.empty()) {
    obs::Flight().Record(obs::FlightEventKind::kMigration, start,
                         std::string(membership::ToString(change.kind)) +
                             " n" + std::to_string(change.node) + ": " +
                             std::to_string(moves.size()) + " chunks move");
  }

  Nanos end = start;
  if (crash) {
    // Unplanned: the moved chunks have no live source. Under the oneshot
    // policy their new owners re-own them from the backend on detached
    // clocks (skipping oracle-dead chunks); on-demand tasks just fault them
    // in on first read.
    if (options_.policy == CachePolicy::kOneshot) {
      std::map<sim::NodeId, std::vector<size_t>> by_dest;
      for (const Move& m : moves) by_dest[m.to].push_back(m.ci);
      for (const auto& [dest, chunks] : by_dest) {
        Result<Nanos> finish = ReownChunks(dest, chunks, start);
        if (finish.ok()) end = std::max(end, *finish);
      }
    }
  } else {
    // Planned: stream every resident moved chunk from its old owner to the
    // new one on per-destination migration clocks. The source keeps serving
    // reads until the move's arrival (migration record); a chunk that is
    // not resident (or whose transfer fails) simply faults in at the new
    // owner on demand.
    std::map<sim::NodeId, std::vector<sim::VirtualClock>> dest_streams;
    const size_t streams = std::max<uint32_t>(1, options_.preload_streams);
    for (const Move& m : moves) {
      // Share the source buffer instead of copying it: the migration "send"
      // is charged on the fabric below, but host-side the move is a refcount
      // bump, and outstanding slices keep the old bytes alive regardless of
      // which partition drops its reference first. The CRC memo travels with
      // the buffer — same immutable bytes, same verification state.
      core::ChunkBuffer buffer;
      std::vector<bool> verified;
      {
        NodePartition& from = PartitionFor(m.from);
        std::lock_guard<std::mutex> lock(from.mutex);
        auto it = from.chunks.find(m.ci);
        if (it != from.chunks.end()) {
          buffer = it->second.buffer;
          verified = it->second.verified;
        }
      }
      if (!buffer.valid()) continue;
      auto& clocks = dest_streams[m.to];
      if (clocks.empty()) clocks.assign(streams, sim::VirtualClock(start));
      sim::VirtualClock* stream = &clocks.front();
      for (sim::VirtualClock& st : clocks) {
        if (st.now() < stream->now()) stream = &st;
      }
      const uint64_t size = buffer.size();
      obs::ScopedSpan span(fabric_.tracer(), "membership.migrate", *stream,
                           m.from);
      span.Note("chunk=" + std::to_string(m.ci) + " to=n" +
                std::to_string(m.to));
      Status call = fabric_.Call(*stream, m.from, m.to, kPeerRequestBytes,
                                 size, [](Nanos arrival) { return arrival; });
      if (!call.ok()) continue;
      Nanos ready = stream->now();
      InsertResult r = InsertChunk(m.to, m.ci, std::move(buffer),
                                   /*prefetched=*/false, /*ready_at=*/ready,
                                   std::move(verified));
      if (r == InsertResult::kDenied) continue;
      if (r == InsertResult::kInserted) {
        {
          std::lock_guard<std::mutex> lock(migration_mutex_);
          migrations_[m.ci] = MigrationRec{m.from, m.to, ready};
        }
        MemCounters().migrated_chunks.Inc();
        MemCounters().migrated_bytes.Inc(size);
        {
          std::lock_guard<std::mutex> slock(stats_mutex_);
          ++stats_.migrated_chunks;
          stats_.migrated_bytes += size;
        }
        end = std::max(end, ready);
      } else {
        // Already resident at the destination: the copy on the old owner is
        // redundant right away.
        FinalizeMigration(m.ci, m.from);
      }
      // Carry any live pin over to the chunk's new home.
      bool transfer = false;
      {
        std::lock_guard<std::mutex> lock(pin_mutex_);
        auto it = pin_home_.find(m.ci);
        if (it != pin_home_.end() && it->second == m.from) {
          it->second = m.to;
          transfer = true;
        }
      }
      if (transfer) {
        bool held = false;
        {
          NodePartition& from = PartitionFor(m.from);
          std::lock_guard<std::mutex> lock(from.mutex);
          held = from.pinned.erase(m.ci) > 0;
        }
        if (held) {
          NodePartition& to = PartitionFor(m.to);
          std::lock_guard<std::mutex> lock(to.mutex);
          to.pinned.insert(m.ci);
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(migration_mutex_);
    last_transition_end_ = std::max(last_transition_end_, end);
  }
}

double TaskCache::HitRatio() const {
  size_t resident = 0;
  std::lock_guard<std::mutex> plock(partitions_mutex_);
  for (const auto& [node, part] : partitions_) {
    std::lock_guard<std::mutex> lock(part->mutex);
    resident += part->chunks.size();
  }
  size_t total = snapshot_.chunks().size();
  return total == 0 ? 1.0 : static_cast<double>(resident) /
                            static_cast<double>(total);
}

void TaskCache::DropPartitionLocked(NodePartition& part) {
  // Prefetched chunks that never served a read die wasted; pins on the lost
  // partition are released (the chunks they protected are gone — a pin must
  // never outlive its chunk, or recovery would wedge on a full partition).
  uint64_t wasted = 0;
  for (const auto& [ci, cc] : part.chunks) {
    if (cc.prefetched && !cc.accessed) ++wasted;
  }
  if (wasted > 0) {
    PfCounters().wasted.Inc(wasted);
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.prefetch_wasted += wasted;
  }
  if (!part.pinned.empty()) {
    PfCounters().pinned_chunks.Add(-static_cast<double>(part.pinned.size()));
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.pinned_chunks -= part.pinned.size();
    part.pinned.clear();
  }
  if (part.bytes > 0) {
    Counters().bytes_cached.Add(-static_cast<double>(part.bytes));
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.bytes_cached -= part.bytes;
  }
  part.chunks.clear();
  part.fifo.clear();
  part.bytes = 0;
}

void TaskCache::DropNode(sim::NodeId node) {
  NodePartition* part = nullptr;
  {
    std::lock_guard<std::mutex> plock(partitions_mutex_);
    auto it = partitions_.find(node);
    if (it == partitions_.end()) return;
    part = it->second.get();
  }
  std::lock_guard<std::mutex> lock(part->mutex);
  DropPartitionLocked(*part);
}

void TaskCache::DropAll() {
  std::lock_guard<std::mutex> plock(partitions_mutex_);
  for (auto& [node, part] : partitions_) {
    std::lock_guard<std::mutex> lock(part->mutex);
    DropPartitionLocked(*part);
  }
}

void TaskCache::AttachSharedTier(SharedCacheTier* tier) {
  shared_tier_.store(tier, std::memory_order_release);
}

uint64_t TaskCache::Teardown(Nanos now) {
  SharedCacheTier* tier = shared_tier_.load(std::memory_order_acquire);
  uint64_t demoted_chunks = 0;
  uint64_t demoted_bytes = 0;
  uint64_t discarded_bytes = 0;
  std::lock_guard<std::mutex> plock(partitions_mutex_);
  // Deterministic demote order (node, then chunk index): the shared tier's
  // admission policy may evict on every offer, so the iteration order is
  // part of the simulation's reproducible behavior.
  std::vector<sim::NodeId> nodes;
  nodes.reserve(partitions_.size());
  for (const auto& [node, part] : partitions_) nodes.push_back(node);
  std::sort(nodes.begin(), nodes.end());
  for (sim::NodeId node : nodes) {
    NodePartition& part = *partitions_.at(node);
    std::lock_guard<std::mutex> lock(part.mutex);
    std::vector<size_t> chunks;
    chunks.reserve(part.chunks.size());
    for (const auto& [ci, cc] : part.chunks) chunks.push_back(ci);
    std::sort(chunks.begin(), chunks.end());
    for (size_t ci : chunks) {
      const CachedChunk& cc = part.chunks.at(ci);
      uint64_t kept = 0;
      if (tier != nullptr) {
        kept = tier->Demote(node, ci, cc.buffer, cc.verified, now);
      }
      if (kept > 0) {
        ++demoted_chunks;
        demoted_bytes += kept;
      } else {
        discarded_bytes += cc.buffer.size();
      }
    }
    DropPartitionLocked(part);
  }
  if (demoted_chunks > 0) {
    TnCounters().demoted_chunks.Inc(demoted_chunks);
    TnCounters().demoted_bytes.Inc(demoted_bytes);
  }
  if (discarded_bytes > 0) TnCounters().discarded_bytes.Inc(discarded_bytes);
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.demoted_chunks += demoted_chunks;
    stats_.demoted_bytes += demoted_bytes;
    stats_.discarded_bytes += discarded_bytes;
  }
  return demoted_bytes;
}

void TaskCache::InstallEvictionOracle(const EvictionOracle* oracle) {
  std::lock_guard<std::mutex> lock(oracle_mutex_);
  oracle_ = oracle;
}

void TaskCache::SetEpochCursor(uint64_t position) {
  cursor_.store(position, std::memory_order_relaxed);
}

void TaskCache::Pin(size_t chunk_index) {
  auto owner = OwnerNodeOfChunk(chunk_index);
  if (!owner.ok()) return;
  // Ownership can move between Pin and Unpin (rescale), so the pin's home
  // partition is recorded; migration re-points it when the chunk moves.
  {
    std::lock_guard<std::mutex> lock(pin_mutex_);
    auto it = pin_home_.find(chunk_index);
    if (it != pin_home_.end()) return;  // already pinned (or stale no-op)
    pin_home_[chunk_index] = owner.value();
  }
  NodePartition& part = PartitionFor(owner.value());
  std::lock_guard<std::mutex> lock(part.mutex);
  if (!part.pinned.insert(chunk_index).second) return;
  PfCounters().pinned_chunks.Add(1.0);
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++stats_.pinned_chunks;
}

void TaskCache::Unpin(size_t chunk_index) {
  sim::NodeId home = sim::kInvalidNode;
  {
    std::lock_guard<std::mutex> lock(pin_mutex_);
    auto it = pin_home_.find(chunk_index);
    if (it == pin_home_.end()) return;
    home = it->second;
    pin_home_.erase(it);
  }
  NodePartition& part = PartitionFor(home);
  std::lock_guard<std::mutex> lock(part.mutex);
  // A dropped partition already released its pins; erase==0 means exactly
  // that, and the gauge must not be decremented twice.
  if (part.pinned.erase(chunk_index) == 0) return;
  PfCounters().pinned_chunks.Add(-1.0);
  std::lock_guard<std::mutex> slock(stats_mutex_);
  --stats_.pinned_chunks;
}

bool TaskCache::ChunkResident(size_t chunk_index) const {
  auto owner = OwnerNodeOfChunk(chunk_index);
  if (!owner.ok()) return false;
  const NodePartition* part = FindPartition(owner.value());
  if (part == nullptr) return false;
  std::lock_guard<std::mutex> lock(part->mutex);
  return part->chunks.count(chunk_index) > 0;
}

Result<TaskCache::PrefetchOutcome> TaskCache::PrefetchChunk(
    sim::VirtualClock& stream, size_t chunk_index) {
  PrefetchOutcome out;
  DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner, OwnerNodeOfChunk(chunk_index));
  {
    NodePartition& part = PartitionFor(owner);
    std::lock_guard<std::mutex> lock(part.mutex);
    if (part.chunks.count(chunk_index) > 0) {
      out.already_resident = true;
      return out;
    }
  }
  obs::ScopedSpan span(fabric_.tracer(), "prefetch.fill", stream, owner);
  span.Note("chunk=" + std::to_string(chunk_index));
  SharedCacheTier* tier = shared_tier_.load(std::memory_order_acquire);
  if (tier != nullptr) {
    // Background fills adopt too: a fill satisfied from the shared tier
    // frees the backend streams (and the prefetch byte budget drains at
    // peer-transfer speed instead of object-store speed).
    auto adopted = tier->Adopt(stream, owner, chunk_index);
    if (adopted.ok()) {
      span.Note("tenant.adopted");
      CountAdoption(adopted->buffer.size());
      out.bytes = adopted->buffer.size();
      out.ready_at = stream.now();
      InsertResult r = InsertChunk(owner, chunk_index,
                                   std::move(adopted->buffer),
                                   /*prefetched=*/true,
                                   /*ready_at=*/stream.now(),
                                   std::move(adopted->verified));
      out.inserted = r == InsertResult::kInserted;
      out.already_resident = r == InsertResult::kAlreadyResident;
      return out;
    }
  }
  uint32_t header_len = 0;
  DIESEL_ASSIGN_OR_RETURN(
      Bytes blob, FetchChunkBlob(stream, owner, chunk_index, &header_len));
  Counters().chunk_loads.Inc();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.chunk_loads;
  }
  out.bytes = blob.size();
  out.ready_at = stream.now();
  core::ChunkBuffer buffer = core::ChunkBuffer::Wrap(std::move(blob), header_len);
  if (tier != nullptr) {
    tier->Publish(owner, chunk_index, buffer, {}, stream.now());
  }
  InsertResult r =
      InsertChunk(owner, chunk_index, std::move(buffer),
                  /*prefetched=*/true, /*ready_at=*/stream.now());
  out.inserted = r == InsertResult::kInserted;
  out.already_resident = r == InsertResult::kAlreadyResident;
  return out;
}

Result<Nanos> TaskCache::Reload(Nanos start) { return Preload(start); }

TaskCacheStats TaskCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

namespace {

class Handle : public core::DatasetCacheInterface {
 public:
  Handle(TaskCache* cache, net::EndpointId ep) : cache_(cache), ep_(ep) {}
  Result<Bytes> GetFile(sim::VirtualClock& clock,
                        const core::FileMeta& meta) override {
    return cache_->GetFile(clock, ep_, meta);
  }
  Result<std::vector<Bytes>> GetFiles(
      sim::VirtualClock& clock,
      std::span<const core::FileMeta> metas) override {
    DIESEL_ASSIGN_OR_RETURN(std::vector<core::FileSlice> slices,
                            cache_->GetFiles(clock, ep_, metas));
    std::vector<Bytes> out;
    out.reserve(slices.size());
    for (const core::FileSlice& s : slices) out.push_back(s.ToBytes());
    return out;
  }

 private:
  TaskCache* cache_;
  net::EndpointId ep_;
};

}  // namespace

std::unique_ptr<core::DatasetCacheInterface> TaskCache::HandleFor(
    net::EndpointId client) {
  return std::make_unique<Handle>(this, client);
}

}  // namespace diesel::cache
