#include "cache/task_cache.h"

#include <algorithm>

#include "common/crc32.h"
#include "core/chunk_format.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/calibration.h"

namespace diesel::cache {
namespace {

constexpr uint64_t kPeerRequestBytes = 96;

/// Registry mirrors of TaskCacheStats, resolved once. The struct duplicates
/// the stats_ fields rather than replacing them so existing callers of
/// stats() keep exact per-instance numbers while the registry aggregates
/// process-wide.
struct CacheCounters {
  obs::Counter& local_hits;
  obs::Counter& peer_hits;
  obs::Counter& chunk_loads;
  obs::Counter& evictions;
  obs::Counter& failovers;
  obs::Counter& breaker_opens;
  obs::Counter& node_recoveries;
  obs::Counter& corruptions;
  obs::Gauge& bytes_cached;
};

CacheCounters& Counters() {
  static CacheCounters c{
      obs::Metrics().GetCounter("cache.local_hits"),
      obs::Metrics().GetCounter("cache.peer_hits"),
      obs::Metrics().GetCounter("cache.chunk_loads"),
      obs::Metrics().GetCounter("cache.evictions"),
      obs::Metrics().GetCounter("cache.failovers"),
      obs::Metrics().GetCounter("cache.breaker_opens"),
      obs::Metrics().GetCounter("cache.node_recoveries"),
      obs::Metrics().GetCounter("cache.corruptions_detected"),
      obs::Metrics().GetGauge("cache.bytes_cached"),
  };
  return c;
}

/// 1 while the node's breaker is open, 0 once it has recovered.
obs::Gauge& BreakerGauge(sim::NodeId node) {
  return obs::Metrics().GetGauge("cache.breaker.state",
                                 {{"node", "n" + std::to_string(node)}});
}

}  // namespace

TaskCache::TaskCache(net::Fabric& fabric, core::DieselServer& server,
                     const core::MetadataSnapshot& snapshot,
                     TaskRegistry& registry, TaskCacheOptions options)
    : fabric_(fabric), server_(server), snapshot_(snapshot),
      registry_(registry), options_(options) {
  owner_nodes_ = registry_.Nodes();
  for (sim::NodeId node : owner_nodes_) {
    partitions_.emplace(node, std::make_unique<NodePartition>());
  }
}

void TaskCache::EstablishConnections() {
  std::vector<net::EndpointId> masters = registry_.Masters();
  for (const net::EndpointId& client : registry_.Members()) {
    for (const net::EndpointId& master : masters) {
      if (client == master) continue;
      fabric_.connections().Connect(client, master);
      ++connections_opened_;
    }
  }
}

Result<sim::NodeId> TaskCache::OwnerNodeOfChunk(size_t chunk_index) const {
  if (owner_nodes_.empty())
    return Status::FailedPrecondition("no task nodes registered");
  return owner_nodes_[chunk_index % owner_nodes_.size()];
}

Result<Bytes> TaskCache::SliceFile(const CachedChunk& chunk,
                                   const core::FileMeta& meta) {
  uint64_t begin = chunk.header_len + meta.offset;
  if (begin + meta.length > chunk.blob.size())
    return Status::Corruption("file range past cached chunk end: " +
                              meta.full_name);
  Bytes content(chunk.blob.begin() + static_cast<ptrdiff_t>(begin),
                chunk.blob.begin() + static_cast<ptrdiff_t>(begin + meta.length));
  // End-to-end integrity: the chunk builder stamped each file's CRC32C into
  // the metadata; a cached copy that no longer matches is treated as a miss
  // (metas built by hand in tests carry crc 0 and skip the check).
  if (meta.crc != 0 && Crc32c(content) != meta.crc)
    return Status::Corruption("cached file checksum mismatch: " +
                              meta.full_name);
  return content;
}

void TaskCache::InsertChunk(sim::NodeId owner, size_t chunk_index, Bytes blob,
                            uint32_t header_len) {
  NodePartition& part = *partitions_.at(owner);
  std::lock_guard<std::mutex> lock(part.mutex);
  if (part.chunks.count(chunk_index) > 0) return;
  uint64_t size = blob.size();
  if (options_.per_node_capacity_bytes != 0) {
    while (part.bytes + size > options_.per_node_capacity_bytes &&
           !part.fifo.empty()) {
      size_t victim = part.fifo.front();
      part.fifo.erase(part.fifo.begin());
      auto it = part.chunks.find(victim);
      if (it != part.chunks.end()) {
        Counters().evictions.Inc();
        Counters().bytes_cached.Add(
            -static_cast<double>(it->second.blob.size()));
        part.bytes -= it->second.blob.size();
        part.chunks.erase(it);
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.evictions;
      }
    }
    if (part.bytes + size > options_.per_node_capacity_bytes) return;
  }
  part.chunks.emplace(chunk_index, CachedChunk{std::move(blob), header_len});
  part.fifo.push_back(chunk_index);
  part.bytes += size;
  Counters().bytes_cached.Add(static_cast<double>(size));
  std::lock_guard<std::mutex> slock(stats_mutex_);
  stats_.bytes_cached += size;
}

Result<Bytes> TaskCache::FetchChunkBlob(sim::VirtualClock& clock,
                                        sim::NodeId reader, size_t chunk_index,
                                        uint32_t* header_len) {
  const core::ChunkId& id = snapshot_.chunks().at(chunk_index);
  DIESEL_ASSIGN_OR_RETURN(
      Bytes blob,
      options_.retry.RunResult<Bytes>(clock, [&]() -> Result<Bytes> {
        return server_.ReadChunk(clock, reader, snapshot_.dataset(), id);
      }));
  DIESEL_ASSIGN_OR_RETURN(core::ChunkView view, core::ChunkView::Parse(blob));
  *header_len = view.header_len();
  // The fabric never sees payloads, so scheduled corruption events land
  // here, on the chunk-fetch path; detection is CRC-driven in SliceFile.
  if (net::FaultInjector* inj = fabric_.fault_injector()) {
    if (inj->ConsumeChunkCorruption(chunk_index)) {
      inj->CorruptPayload(blob, *header_len, chunk_index);
      obs::ScopedSpan::NoteCurrent(
          fabric_.tracer(), clock.now(),
          "fault.corrupt chunk=" + std::to_string(chunk_index));
    }
  }
  return blob;
}

Status TaskCache::EnsureLoaded(sim::VirtualClock& clock, sim::NodeId owner,
                               size_t chunk_index) {
  NodePartition& part = *partitions_.at(owner);
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    if (part.chunks.count(chunk_index) > 0) return Status::Ok();
  }
  // Miss: pull the whole chunk from the server (on-demand policy / recovery).
  uint32_t header_len = 0;
  DIESEL_ASSIGN_OR_RETURN(Bytes blob,
                          FetchChunkBlob(clock, owner, chunk_index, &header_len));
  Counters().chunk_loads.Inc();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.chunk_loads;
  }
  InsertChunk(owner, chunk_index, std::move(blob), header_len);
  return Status::Ok();
}

Result<Bytes> TaskCache::ReadFromPartition(sim::VirtualClock& clock,
                                           sim::NodeId owner,
                                           size_t chunk_index,
                                           const core::FileMeta& meta) {
  NodePartition& part = *partitions_.at(owner);
  {
    std::lock_guard<std::mutex> lock(part.mutex);
    auto it = part.chunks.find(chunk_index);
    if (it != part.chunks.end()) {
      Result<Bytes> sliced = SliceFile(it->second, meta);
      if (!sliced.status().IsCorruption()) return sliced;
      // Cached copy failed its checksum: evict it and fall through to a
      // fresh fetch below.
      part.bytes -= it->second.blob.size();
      part.fifo.erase(std::remove(part.fifo.begin(), part.fifo.end(),
                                  chunk_index),
                      part.fifo.end());
      part.chunks.erase(it);
      Counters().corruptions.Inc();
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.corruptions_detected;
    }
  }
  // Miss: fetch the chunk, slice from the local copy (immune to concurrent
  // eviction), then install it for subsequent readers. A corrupted fetch is
  // detected by the slice CRC and re-fetched once (injected corruption is
  // one-shot, so the second copy is clean; a persistently corrupt chunk
  // still surfaces Corruption).
  for (int fetch = 0;; ++fetch) {
    uint32_t header_len = 0;
    DIESEL_ASSIGN_OR_RETURN(
        Bytes blob, FetchChunkBlob(clock, owner, chunk_index, &header_len));
    CachedChunk local{std::move(blob), header_len};
    Result<Bytes> content = SliceFile(local, meta);
    if (content.status().IsCorruption() && fetch == 0) {
      Counters().corruptions.Inc();
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.corruptions_detected;
      continue;
    }
    DIESEL_RETURN_IF_ERROR(content.status());
    Counters().chunk_loads.Inc();
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.chunk_loads;
    }
    InsertChunk(owner, chunk_index, std::move(local.blob), local.header_len);
    return content;
  }
}

Result<Nanos> TaskCache::PreloadPartition(sim::NodeId node, Nanos start) {
  const size_t streams = std::max<uint32_t>(1, options_.preload_streams);
  std::vector<size_t> mine;
  for (size_t ci = 0; ci < snapshot_.chunks().size(); ++ci) {
    DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner, OwnerNodeOfChunk(ci));
    if (owner == node) mine.push_back(ci);
  }
  std::vector<sim::VirtualClock> clocks(streams, sim::VirtualClock(start));
  for (size_t next = 0; next < mine.size(); ++next) {
    // Earliest-clock stream fetches the next chunk (closed loop).
    size_t s = 0;
    for (size_t k = 1; k < streams; ++k) {
      if (clocks[k].now() < clocks[s].now()) s = k;
    }
    DIESEL_RETURN_IF_ERROR(EnsureLoaded(clocks[s], node, mine[next]));
  }
  Nanos finish = start;
  for (const auto& c : clocks) finish = std::max(finish, c.now());
  return finish;
}

Result<Nanos> TaskCache::Preload(Nanos start) {
  // Each master pulls its partition with `preload_streams` concurrent
  // fetch streams; nodes work in parallel so the makespan is the slowest
  // node's finish time.
  Nanos makespan = start;
  for (sim::NodeId node : owner_nodes_) {
    DIESEL_ASSIGN_OR_RETURN(Nanos finish, PreloadPartition(node, start));
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

Result<Bytes> TaskCache::GetFile(sim::VirtualClock& clock,
                                 net::EndpointId requester,
                                 const core::FileMeta& meta) {
  obs::ScopedSpan span(fabric_.tracer(), "cache.get_file", clock,
                       requester.node);
  size_t chunk_index = snapshot_.ChunkIndex(meta.chunk);
  if (chunk_index == static_cast<size_t>(-1))
    return Status::NotFound("chunk not in snapshot: " + meta.chunk.Encoded());
  DIESEL_ASSIGN_OR_RETURN(sim::NodeId owner, OwnerNodeOfChunk(chunk_index));

  if (owner == requester.node) {
    // Local partition: memory-bus copy.
    DIESEL_ASSIGN_OR_RETURN(Bytes content,
                            ReadFromPartition(clock, owner, chunk_index, meta));
    Nanos t = fabric_.cluster().node(owner).membus().Serve(clock.now(),
                                                           meta.length);
    clock.AdvanceTo(t);
    Counters().local_hits.Inc();
    span.Note("cache.local_hit");
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.local_hits;
    }
    return content;
  }

  // One-hop fetch from the owner's master client. The owner sits behind a
  // per-node circuit breaker: transient failures retry with backoff; an
  // unreachable owner opens the breaker (its in-RAM partition is presumed
  // lost) and the read degrades to a direct server fetch.
  CircuitBreaker& breaker = BreakerFor(owner);
  const RetryPolicy& retry = options_.retry;
  const uint32_t max_attempts = std::max<uint32_t>(1, retry.max_attempts);
  const Nanos start = clock.now();
  Status last = Status::Unavailable("peer fetch not attempted");
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!breaker.AllowRequest(clock.now())) {
      last = Status::Unavailable("circuit open: owner node " +
                                 std::to_string(owner));
      break;
    }
    Result<Bytes> content = Status::Internal("unset");
    Status call = fabric_.Call(
        clock, requester.node, owner, kPeerRequestBytes, meta.length,
        [&](Nanos arrival) {
          sim::VirtualClock peer(arrival);
          content = ReadFromPartition(peer, owner, chunk_index, meta);
          Nanos t = fabric_.cluster().node(owner).membus().Serve(peer.now(),
                                                                 meta.length);
          peer.AdvanceTo(t);
          return peer.now();
        });
    if (call.ok() && !content.status().IsUnavailable()) {
      if (breaker.OnSuccess(clock.now()) ==
          CircuitBreaker::Transition::kRecovered) {
        span.Note("breaker.recovered node=" + std::to_string(owner));
        OnOwnerRecovered(owner, clock.now());
      }
      if (content.ok()) {
        Counters().peer_hits.Inc();
        span.Note("cache.peer_hit");
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.peer_hits;
      }
      return content;
    }
    last = call.ok() ? content.status() : call;
    // A flap of the requester's own node also fails the call; that says
    // nothing about the owner, so only remote failures charge its breaker
    // (a held half-open probe slot must still report its outcome).
    if (fabric_.NodeAvailable(requester.node, clock.now()) ||
        breaker.state() == CircuitBreaker::State::kHalfOpen) {
      if (breaker.OnFailure(clock.now()) ==
          CircuitBreaker::Transition::kOpened) {
        // Owner presumed crashed: what it cached in RAM is gone.
        DropNode(owner);
        Counters().breaker_opens.Inc();
        BreakerGauge(owner).Set(1.0);
        span.Note("breaker.open node=" + std::to_string(owner));
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.breaker_opens;
      }
    }
    if (attempt >= max_attempts) break;
    Nanos wait = retry.BackoffBefore(attempt);
    if (retry.deadline_budget != 0 &&
        clock.now() - start + wait > retry.deadline_budget) {
      break;
    }
    clock.Advance(wait);
  }
  if (!options_.degraded_reads) return last;
  Counters().failovers.Inc();
  span.Note("cache.degraded_read");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failovers;
  }
  return DegradedRead(clock, requester, meta);
}

CircuitBreaker& TaskCache::BreakerFor(sim::NodeId node) {
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  auto it = breakers_.find(node);
  if (it == breakers_.end())
    it = breakers_.try_emplace(node, options_.breaker).first;
  return it->second;
}

Result<Bytes> TaskCache::DegradedRead(sim::VirtualClock& clock,
                                      net::EndpointId requester,
                                      const core::FileMeta& meta) {
  return options_.retry.RunResult<Bytes>(clock, [&]() -> Result<Bytes> {
    return server_.ReadFile(clock, requester.node, snapshot_.dataset(),
                            meta.full_name);
  });
}

void TaskCache::OnOwnerRecovered(sim::NodeId owner, Nanos now) {
  Counters().node_recoveries.Inc();
  BreakerGauge(owner).Set(0.0);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.node_recoveries;
  }
  if (options_.policy == CachePolicy::kOneshot) {
    // Chunk-granular re-own: repopulate the recovered node's partition on a
    // detached clock — the reload overlaps the requesters' continued reads,
    // which keep being served (degraded) until chunks come back.
    size_t before = 0;
    {
      NodePartition& part = *partitions_.at(owner);
      std::lock_guard<std::mutex> lock(part.mutex);
      before = part.chunks.size();
    }
    Result<Nanos> reload = PreloadPartition(owner, now);
    (void)reload;
    size_t after = 0;
    {
      NodePartition& part = *partitions_.at(owner);
      std::lock_guard<std::mutex> lock(part.mutex);
      after = part.chunks.size();
    }
    if (after > before) {
      obs::Metrics()
          .GetCounter("cache.reown_chunks",
                      {{"node", "n" + std::to_string(owner)}})
          .Inc(after - before);
    }
  }
}

double TaskCache::HitRatio() const {
  size_t resident = 0;
  for (const auto& [node, part] : partitions_) {
    std::lock_guard<std::mutex> lock(part->mutex);
    resident += part->chunks.size();
  }
  size_t total = snapshot_.chunks().size();
  return total == 0 ? 1.0 : static_cast<double>(resident) /
                            static_cast<double>(total);
}

void TaskCache::DropNode(sim::NodeId node) {
  auto it = partitions_.find(node);
  if (it == partitions_.end()) return;
  NodePartition& part = *it->second;
  std::lock_guard<std::mutex> lock(part.mutex);
  part.chunks.clear();
  part.fifo.clear();
  part.bytes = 0;
}

void TaskCache::DropAll() {
  for (auto& [node, part] : partitions_) {
    std::lock_guard<std::mutex> lock(part->mutex);
    part->chunks.clear();
    part->fifo.clear();
    part->bytes = 0;
  }
}

Result<Nanos> TaskCache::Reload(Nanos start) { return Preload(start); }

TaskCacheStats TaskCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

namespace {

class Handle : public core::DatasetCacheInterface {
 public:
  Handle(TaskCache* cache, net::EndpointId ep) : cache_(cache), ep_(ep) {}
  Result<Bytes> GetFile(sim::VirtualClock& clock,
                        const core::FileMeta& meta) override {
    return cache_->GetFile(clock, ep_, meta);
  }

 private:
  TaskCache* cache_;
  net::EndpointId ep_;
};

}  // namespace

std::unique_ptr<core::DatasetCacheInterface> TaskCache::HandleFor(
    net::EndpointId client) {
  return std::make_unique<Handle>(this, client);
}

}  // namespace diesel::cache
