#include "memcache/memcache.h"

#include <cassert>

#include "sim/calibration.h"

namespace diesel::memcache {
namespace {

constexpr uint64_t kItemOverheadBytes = 40;  // memcached protocol framing

}  // namespace

MemcachedCluster::MemcachedCluster(net::Fabric& fabric, MemcacheOptions options)
    : fabric_(fabric), ring_(options.ring_vnodes) {
  assert(!options.nodes.empty());
  for (uint32_t i = 0; i < options.nodes.size(); ++i) {
    auto inst = std::make_unique<Instance>();
    inst->node = options.nodes[i];
    inst->service = std::make_unique<sim::Device>(
        sim::MemcachedNodeSpec("mc" + std::to_string(i)));
    inst->proxy = std::make_unique<sim::Device>(
        sim::TwemproxySpec("twemproxy" + std::to_string(i)));
    instances_.push_back(std::move(inst));
    ring_.AddMember(i);
  }
}

template <typename Fn>
Status MemcachedCluster::Rpc(sim::VirtualClock& clock, sim::NodeId client,
                             Instance& inst, uint64_t req_bytes,
                             uint64_t resp_bytes, Nanos proxy_cost,
                             Fn&& apply) {
  // Client -> proxy hop -> memcached service, all on the owner node. The
  // proxy pipelines writes but serves reads one-by-one (§6.2), hence the
  // caller-provided per-op proxy cost.
  return fabric_.Call(
      clock, client, inst.node, req_bytes, resp_bytes,
      [&](Nanos arrival) {
        Nanos after_proxy = inst.proxy->Serve(arrival, req_bytes, proxy_cost);
        apply();
        uint64_t item_bytes = req_bytes + resp_bytes;
        Nanos slab_penalty =
            item_bytes > sim::kMcLargeItemThreshold
                ? static_cast<Nanos>(item_bytes * sim::kMcLargeItemNsPerByte)
                : 0;
        return inst.service->Serve(after_proxy, item_bytes, slab_penalty);
      });
}

Status MemcachedCluster::Set(sim::VirtualClock& clock, sim::NodeId client,
                             std::string key, std::string value) {
  Instance& inst = *instances_[ring_.Owner(key)];
  uint64_t req = key.size() + value.size() + kItemOverheadBytes;
  Status op_status;
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, inst, req, kItemOverheadBytes,
                             sim::kProxyWriteCost, [&] {
                               std::lock_guard<std::mutex> lock(inst.mutex);
                               if (!inst.enabled) {
                                 op_status = Status::Unavailable(
                                     "memcached instance disabled");
                                 return;
                               }
                               inst.items[std::move(key)] = std::move(value);
                             }));
  return op_status;
}

Result<std::string> MemcachedCluster::Get(sim::VirtualClock& clock,
                                          sim::NodeId client,
                                          const std::string& key) {
  Instance& inst = *instances_[ring_.Owner(key)];
  Result<std::string> result = Status::NotFound("miss");
  uint64_t req = key.size() + kItemOverheadBytes;
  uint64_t resp = 0;
  bool dead_instance = false;
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, inst, req, resp,
                             sim::kProxyReadCost, [&] {
    std::lock_guard<std::mutex> lock(inst.mutex);
    if (!inst.enabled) {
      result = Status::NotFound("memcached instance disabled");
      dead_instance = true;
      return;
    }
    auto it = inst.items.find(key);
    if (it == inst.items.end()) {
      result = Status::NotFound("miss: " + key);
    } else {
      result = it->second;
    }
  }));
  // A get routed to a dead instance pays connection-failure detection
  // (timeout + libMemcached retry) before the caller can fall back.
  if (dead_instance) clock.Advance(sim::kMcDeadInstanceCost);
  // Response bytes for a hit are paid on the way back; approximate by an
  // extra NIC charge sized to the value.
  if (result.ok() && !result.value().empty()) {
    Nanos t = fabric_.cluster().node(client).nic().Serve(
        clock.now(), result.value().size());
    clock.AdvanceTo(t);
  }
  return result;
}

Status MemcachedCluster::Delete(sim::VirtualClock& clock, sim::NodeId client,
                                const std::string& key) {
  Instance& inst = *instances_[ring_.Owner(key)];
  Status op_status;
  DIESEL_RETURN_IF_ERROR(Rpc(clock, client, inst,
                             key.size() + kItemOverheadBytes,
                             kItemOverheadBytes, sim::kProxyWriteCost, [&] {
                               std::lock_guard<std::mutex> lock(inst.mutex);
                               if (!inst.enabled) {
                                 op_status = Status::Unavailable(
                                     "memcached instance disabled");
                                 return;
                               }
                               op_status = inst.items.erase(key) > 0
                                               ? Status::Ok()
                                               : Status::NotFound(key);
                             }));
  return op_status;
}

void MemcachedCluster::DisableInstance(uint32_t instance_index) {
  Instance& inst = *instances_.at(instance_index);
  std::lock_guard<std::mutex> lock(inst.mutex);
  inst.enabled = false;
  inst.items.clear();  // in-memory cache: contents are gone
}

void MemcachedCluster::EnableInstance(uint32_t instance_index) {
  Instance& inst = *instances_.at(instance_index);
  std::lock_guard<std::mutex> lock(inst.mutex);
  inst.enabled = true;
}

bool MemcachedCluster::InstanceEnabled(uint32_t instance_index) const {
  Instance& inst = *instances_.at(instance_index);
  std::lock_guard<std::mutex> lock(inst.mutex);
  return inst.enabled;
}

size_t MemcachedCluster::TotalItems() const {
  size_t n = 0;
  for (const auto& inst : instances_) {
    std::lock_guard<std::mutex> lock(inst->mutex);
    if (inst->enabled) n += inst->items.size();
  }
  return n;
}

}  // namespace diesel::memcache
