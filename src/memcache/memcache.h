// Memcached-cluster baseline (global in-memory caching system, §2.2/§6).
//
// Mirrors the paper's comparison setup: one memcached instance per node
// behind twemproxy instances that provide consistent hashing and a unified
// namespace. Every operation is an individual network RPC (libMemcached has
// no batch write mode), which is exactly the overhead Figs. 9/11 measure.
// Disabling an instance does NOT remap the ring (twemproxy keeps routing to
// it); lookups that land there miss — the Fig. 6 failure experiment.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "kv/ring.h"
#include "net/fabric.h"
#include "sim/clock.h"
#include "sim/device.h"

namespace diesel::memcache {

struct MemcacheOptions {
  std::vector<sim::NodeId> nodes;   // one instance per node
  uint32_t ring_vnodes = 64;
};

class MemcachedCluster {
 public:
  MemcachedCluster(net::Fabric& fabric, MemcacheOptions options);

  size_t NumInstances() const { return instances_.size(); }

  /// Store an item (one RPC through the node-local proxy to the owner).
  Status Set(sim::VirtualClock& clock, sim::NodeId client, std::string key,
             std::string value);

  /// Fetch; NotFound = cache miss (instance disabled or item absent).
  Result<std::string> Get(sim::VirtualClock& clock, sim::NodeId client,
                          const std::string& key);

  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key);

  /// Which instance index owns a key (for tests / targeted failures).
  uint32_t OwnerInstance(const std::string& key) const {
    return ring_.Owner(key);
  }

  /// Disable the instance on `instance_index`: its items become misses.
  void DisableInstance(uint32_t instance_index);
  void EnableInstance(uint32_t instance_index);
  bool InstanceEnabled(uint32_t instance_index) const;

  /// Count of items currently stored across enabled instances.
  size_t TotalItems() const;

 private:
  struct Instance {
    sim::NodeId node;
    std::unique_ptr<sim::Device> service;   // memcached worker threads
    std::unique_ptr<sim::Device> proxy;     // twemproxy instances on the node
    mutable std::mutex mutex;
    bool enabled = true;
    std::unordered_map<std::string, std::string> items;
  };

  template <typename Fn>
  Status Rpc(sim::VirtualClock& clock, sim::NodeId client, Instance& inst,
             uint64_t req_bytes, uint64_t resp_bytes, Nanos proxy_cost,
             Fn&& apply);

  net::Fabric& fabric_;
  kv::HashRing ring_;
  std::vector<std::unique_ptr<Instance>> instances_;
};

}  // namespace diesel::memcache
