#include "ostore/modeled_store.h"

namespace diesel::ostore {
namespace {

constexpr uint64_t kRequestOverheadBytes = 64;

// Backing stores take a clock but the modeled wrapper charges all time
// itself; hand them a scratch clock so they stay time-free.
sim::VirtualClock& ScratchClock() {
  thread_local sim::VirtualClock clock;
  return clock;
}

}  // namespace

Status ModeledStore::Put(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, BytesView data) {
  Status op_status;
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, storage_node_, data.size() + kRequestOverheadBytes,
      kRequestOverheadBytes, [&](Nanos arrival) {
        op_status = backing_->Put(ScratchClock(), client, key, data);
        return write_device_.Serve(arrival, data.size());
      }));
  return op_status;
}

Result<Bytes> ModeledStore::Get(sim::VirtualClock& clock, sim::NodeId client,
                                const std::string& key) {
  Result<Bytes> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, storage_node_, kRequestOverheadBytes,
      kRequestOverheadBytes, [&](Nanos arrival) {
        result = backing_->Get(ScratchClock(), client, key);
        uint64_t bytes = result.ok() ? result.value().size() : 0;
        return device_.Serve(arrival, bytes);
      }));
  if (result.ok() && !result.value().empty()) {
    // Response payload crosses the client NIC on the way back.
    Nanos t = fabric_.cluster().node(client).nic().Serve(clock.now(),
                                                         result.value().size());
    clock.AdvanceTo(t);
  }
  return result;
}

Result<Bytes> ModeledStore::GetRange(sim::VirtualClock& clock,
                                     sim::NodeId client,
                                     const std::string& key, uint64_t offset,
                                     uint64_t len) {
  Result<Bytes> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, storage_node_, kRequestOverheadBytes,
      kRequestOverheadBytes, [&](Nanos arrival) {
        result = backing_->GetRange(ScratchClock(), client, key, offset, len);
        uint64_t bytes = result.ok() ? result.value().size() : 0;
        return device_.Serve(arrival, bytes);
      }));
  if (result.ok() && !result.value().empty()) {
    Nanos t = fabric_.cluster().node(client).nic().Serve(clock.now(),
                                                         result.value().size());
    clock.AdvanceTo(t);
  }
  return result;
}

Status ModeledStore::Delete(sim::VirtualClock& clock, sim::NodeId client,
                            const std::string& key) {
  Status op_status;
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, storage_node_, kRequestOverheadBytes,
      kRequestOverheadBytes, [&](Nanos arrival) {
        op_status = backing_->Delete(ScratchClock(), client, key);
        return device_.Serve(arrival, 0);
      }));
  return op_status;
}

Result<std::vector<std::string>> ModeledStore::List(sim::VirtualClock& clock,
                                                    sim::NodeId client,
                                                    const std::string& prefix) {
  Result<std::vector<std::string>> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, storage_node_, kRequestOverheadBytes,
      kRequestOverheadBytes, [&](Nanos arrival) {
        result = backing_->List(ScratchClock(), client, prefix);
        uint64_t bytes = 0;
        if (result.ok()) {
          for (const auto& k : result.value()) bytes += k.size();
        }
        return device_.Serve(arrival, bytes);
      }));
  return result;
}

Result<uint64_t> ModeledStore::Size(sim::VirtualClock& clock,
                                    sim::NodeId client,
                                    const std::string& key) {
  Result<uint64_t> result = Status::Internal("unset");
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, storage_node_, kRequestOverheadBytes,
      kRequestOverheadBytes, [&](Nanos arrival) {
        result = backing_->Size(ScratchClock(), client, key);
        return device_.Serve(arrival, 0);
      }));
  return result;
}

}  // namespace diesel::ostore
