// StripedStore: chunk objects distributed across multiple storage gateways
// (the paper's cluster has six storage machines; Lustre/Ceph stripe objects
// across them). Each gateway is an independent ObjectStore (normally a
// ModeledStore with its own node, NIC and device), so aggregate bandwidth
// scales with gateway count. Objects are placed by consistent hashing of
// the key; List() merges the gateways' sorted listings.
#pragma once

#include <memory>
#include <vector>

#include "kv/ring.h"
#include "ostore/object_store.h"

namespace diesel::ostore {

class StripedStore : public ObjectStore {
 public:
  /// `gateways` must be non-empty and outlive this store.
  explicit StripedStore(std::vector<ObjectStore*> gateways);

  size_t NumGateways() const { return gateways_.size(); }
  /// Which gateway index owns a key (placement is stable).
  uint32_t OwnerOf(const std::string& key) const { return ring_.Owner(key); }

  Status Put(sim::VirtualClock& clock, sim::NodeId client,
             const std::string& key, BytesView data) override;
  Result<Bytes> Get(sim::VirtualClock& clock, sim::NodeId client,
                    const std::string& key) override;
  Result<Bytes> GetRange(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, uint64_t offset,
                         uint64_t len) override;
  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key) override;
  Result<std::vector<std::string>> List(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& prefix) override;
  Result<uint64_t> Size(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t NumObjects() const override;
  uint64_t TotalBytes() const override;

 private:
  ObjectStore& Owner(const std::string& key) {
    return *gateways_[ring_.Owner(key)];
  }

  std::vector<ObjectStore*> gateways_;
  kv::HashRing ring_;
};

}  // namespace diesel::ostore
