#include "ostore/dir_store.h"

#include <algorithm>
#include <fstream>

namespace diesel::ostore {

namespace fs = std::filesystem;

DirStore::DirStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
}

fs::path DirStore::PathFor(const std::string& key) const {
  return root_ / fs::path(key);
}

Result<std::string> DirStore::KeyFor(const fs::path& file) const {
  std::error_code ec;
  fs::path rel = fs::relative(file, root_, ec);
  if (ec) return Status::Internal("relative path failed");
  return rel.generic_string();
}

Status DirStore::Put(sim::VirtualClock&, sim::NodeId, const std::string& key,
                     BytesView data) {
  fs::path p = PathFor(key);
  std::error_code ec;
  fs::create_directories(p.parent_path(), ec);
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + p.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IoError("short write: " + p.string());
  return Status::Ok();
}

Result<Bytes> DirStore::Get(sim::VirtualClock&, sim::NodeId,
                            const std::string& key) {
  fs::path p = PathFor(key);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("object: " + key);
  auto size = in.tellg();
  in.seekg(0);
  Bytes out(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  if (!in) return Status::IoError("short read: " + p.string());
  return out;
}

Result<Bytes> DirStore::GetRange(sim::VirtualClock&, sim::NodeId,
                                 const std::string& key, uint64_t offset,
                                 uint64_t len) {
  fs::path p = PathFor(key);
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("object: " + key);
  uint64_t size = static_cast<uint64_t>(in.tellg());
  if (offset + len > size)
    return Status::OutOfRange("range past end of object: " + key);
  in.seekg(static_cast<std::streamoff>(offset));
  Bytes out(static_cast<size_t>(len));
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(len));
  if (!in) return Status::IoError("short read: " + p.string());
  return out;
}

Status DirStore::Delete(sim::VirtualClock&, sim::NodeId,
                        const std::string& key) {
  std::error_code ec;
  if (!fs::remove(PathFor(key), ec) || ec)
    return Status::NotFound("object: " + key);
  return Status::Ok();
}

Result<std::vector<std::string>> DirStore::List(sim::VirtualClock&, sim::NodeId,
                                                const std::string& prefix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    auto key = KeyFor(it->path());
    if (!key.ok()) continue;
    if (key.value().compare(0, prefix.size(), prefix) == 0)
      out.push_back(key.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<uint64_t> DirStore::Size(sim::VirtualClock&, sim::NodeId,
                                const std::string& key) {
  std::error_code ec;
  uint64_t size = fs::file_size(PathFor(key), ec);
  if (ec) return Status::NotFound("object: " + key);
  return size;
}

bool DirStore::Contains(const std::string& key) const {
  std::error_code ec;
  return fs::is_regular_file(PathFor(key), ec);
}

size_t DirStore::NumObjects() const {
  size_t n = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file()) ++n;
  }
  return n;
}

uint64_t DirStore::TotalBytes() const {
  uint64_t n = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file()) n += it->file_size();
  }
  return n;
}

}  // namespace diesel::ostore
