// Object-store abstraction for chunk blobs (stands in for Ceph/Lustre-backed
// object storage, Fig. 2).
//
// DIESEL stores data chunks as immutable blobs keyed by their encoded chunk
// ID; listing returns keys in lexicographic order, which — with the
// order-preserving chunk-ID encoding — is write order, the property the
// metadata recovery scan depends on (§4.1.2).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/clock.h"
#include "sim/node.h"

namespace diesel::ostore {

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Store a blob (overwrites).
  virtual Status Put(sim::VirtualClock& clock, sim::NodeId client,
                     const std::string& key, BytesView data) = 0;

  /// Fetch a whole blob.
  virtual Result<Bytes> Get(sim::VirtualClock& clock, sim::NodeId client,
                            const std::string& key) = 0;

  /// Fetch `len` bytes starting at `offset`. OutOfRange if past the end.
  virtual Result<Bytes> GetRange(sim::VirtualClock& clock, sim::NodeId client,
                                 const std::string& key, uint64_t offset,
                                 uint64_t len) = 0;

  virtual Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key) = 0;

  /// Keys with the given prefix, lexicographically sorted.
  virtual Result<std::vector<std::string>> List(sim::VirtualClock& clock,
                                                sim::NodeId client,
                                                const std::string& prefix) = 0;

  virtual Result<uint64_t> Size(sim::VirtualClock& clock, sim::NodeId client,
                                const std::string& key) = 0;

  virtual bool Contains(const std::string& key) const = 0;
  virtual size_t NumObjects() const = 0;
  virtual uint64_t TotalBytes() const = 0;
};

}  // namespace diesel::ostore
