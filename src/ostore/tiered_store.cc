#include "ostore/tiered_store.h"

namespace diesel::ostore {

Status TieredStore::Put(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key, BytesView data) {
  return slow_->Put(clock, client, key, data);
}

Result<Bytes> TieredStore::Get(sim::VirtualClock& clock, sim::NodeId client,
                               const std::string& key) {
  bool in_fast;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_fast = fast_keys_.count(key) > 0;
    if (in_fast) {
      ++stats_.fast_hits;
    } else {
      ++stats_.slow_hits;
    }
  }
  if (in_fast) return fast_->Get(clock, client, key);
  Result<Bytes> blob = slow_->Get(clock, client, key);
  if (blob.ok()) Promote(key, blob.value());
  return blob;
}

Result<Bytes> TieredStore::GetRange(sim::VirtualClock& clock,
                                    sim::NodeId client, const std::string& key,
                                    uint64_t offset, uint64_t len) {
  bool in_fast;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_fast = fast_keys_.count(key) > 0;
    if (in_fast) {
      ++stats_.fast_hits;
    } else {
      ++stats_.slow_hits;
    }
  }
  if (in_fast) return fast_->GetRange(clock, client, key, offset, len);
  // Miss: read the whole object from the slow tier (chunk-granular caching),
  // promote, and return the requested range.
  Result<Bytes> blob = slow_->Get(clock, client, key);
  if (!blob.ok()) return blob.status();
  if (offset + len > blob.value().size())
    return Status::OutOfRange("range past end of object: " + key);
  Promote(key, blob.value());
  return Bytes(blob.value().begin() + static_cast<ptrdiff_t>(offset),
               blob.value().begin() + static_cast<ptrdiff_t>(offset + len));
}

Status TieredStore::Delete(sim::VirtualClock& clock, sim::NodeId client,
                           const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fast_keys_.erase(key) > 0) {
      (void)fast_->Delete(background_clock_, client, key);
    }
  }
  return slow_->Delete(clock, client, key);
}

Result<std::vector<std::string>> TieredStore::List(sim::VirtualClock& clock,
                                                   sim::NodeId client,
                                                   const std::string& prefix) {
  return slow_->List(clock, client, prefix);
}

Result<uint64_t> TieredStore::Size(sim::VirtualClock& clock, sim::NodeId client,
                                   const std::string& key) {
  return slow_->Size(clock, client, key);
}

void TieredStore::Promote(const std::string& key, const Bytes& blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fast_keys_.count(key) > 0) return;
  if (capacity_ != 0) {
    while (fast_bytes_ + blob.size() > capacity_ && !fifo_.empty()) {
      const std::string& victim = fifo_.front();
      auto victim_size = fast_->Size(background_clock_, 0, victim);
      if (victim_size.ok()) fast_bytes_ -= victim_size.value();
      (void)fast_->Delete(background_clock_, 0, victim);
      fast_keys_.erase(victim);
      fifo_.pop_front();
      ++stats_.evictions;
    }
    if (fast_bytes_ + blob.size() > capacity_) return;  // object too large
  }
  if (fast_->Put(background_clock_, 0, key, blob).ok()) {
    fast_keys_.insert(key);
    fifo_.push_back(key);
    fast_bytes_ += blob.size();
    ++stats_.promotions;
  }
}

}  // namespace diesel::ostore
