// DirStore: object store backed by a real directory on the host filesystem.
//
// Used by the dlcmd tool and examples to persist datasets and metadata
// snapshots across process runs. Keys map to files under the root; '/' in a
// key becomes a subdirectory. Virtual clocks are ignored (real I/O).
#pragma once

#include <filesystem>
#include <mutex>

#include "ostore/object_store.h"

namespace diesel::ostore {

class DirStore : public ObjectStore {
 public:
  /// Creates `root` if missing.
  explicit DirStore(std::filesystem::path root);

  Status Put(sim::VirtualClock& clock, sim::NodeId client,
             const std::string& key, BytesView data) override;
  Result<Bytes> Get(sim::VirtualClock& clock, sim::NodeId client,
                    const std::string& key) override;
  Result<Bytes> GetRange(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, uint64_t offset,
                         uint64_t len) override;
  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key) override;
  Result<std::vector<std::string>> List(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& prefix) override;
  Result<uint64_t> Size(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t NumObjects() const override;
  uint64_t TotalBytes() const override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path PathFor(const std::string& key) const;
  Result<std::string> KeyFor(const std::filesystem::path& file) const;

  std::filesystem::path root_;
};

}  // namespace diesel::ostore
