// TieredStore: the DIESEL server cache (Fig. 4).
//
// Reads try the fast tier (SSD-class) first; on a miss they are served by
// the slow tier (HDD-class) and the object is promoted so subsequent reads
// hit the fast tier — "if a cache miss occurs on the server-side, the server
// will start to cache the dataset in the background". Promotion capacity is
// bounded; eviction is FIFO in insertion order (datasets are read wholly and
// cyclically, so recency gives no signal).
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>

#include "ostore/object_store.h"

namespace diesel::ostore {

struct TieredStats {
  uint64_t fast_hits = 0;
  uint64_t slow_hits = 0;
  uint64_t promotions = 0;
  uint64_t evictions = 0;
};

class TieredStore : public ObjectStore {
 public:
  /// Both tiers must outlive this store. `fast_capacity_bytes` bounds the
  /// fast tier (0 = unbounded). Writes go to the slow tier (durable) only;
  /// the fast tier fills via promotion.
  TieredStore(ObjectStore* fast, ObjectStore* slow, uint64_t fast_capacity_bytes)
      : fast_(fast), slow_(slow), capacity_(fast_capacity_bytes) {}

  Status Put(sim::VirtualClock& clock, sim::NodeId client,
             const std::string& key, BytesView data) override;
  Result<Bytes> Get(sim::VirtualClock& clock, sim::NodeId client,
                    const std::string& key) override;
  Result<Bytes> GetRange(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, uint64_t offset,
                         uint64_t len) override;
  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key) override;
  Result<std::vector<std::string>> List(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& prefix) override;
  Result<uint64_t> Size(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key) override;
  bool Contains(const std::string& key) const override {
    return slow_->Contains(key);
  }
  size_t NumObjects() const override { return slow_->NumObjects(); }
  uint64_t TotalBytes() const override { return slow_->TotalBytes(); }

  TieredStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  /// After a slow-tier hit: install into the fast tier, evicting as needed.
  /// Promotion time is charged to a detached background clock, not `clock` —
  /// the caller does not wait for it (paper: caching happens in background).
  void Promote(const std::string& key, const Bytes& blob);

  ObjectStore* fast_;
  ObjectStore* slow_;
  uint64_t capacity_;

  mutable std::mutex mutex_;
  std::unordered_set<std::string> fast_keys_;
  std::deque<std::string> fifo_;
  uint64_t fast_bytes_ = 0;
  TieredStats stats_;
  sim::VirtualClock background_clock_;
};

}  // namespace diesel::ostore
