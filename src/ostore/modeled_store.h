// ModeledStore: an ObjectStore decorator that charges virtual time.
//
// Wraps any backing store with (a) an RPC from the client node to the
// storage gateway node and (b) a storage-device charge sized to the bytes
// moved. With SsdClusterSpec() this reproduces the Table 2 block-size sweep;
// with HddClusterSpec() it models the slow backend tier of Fig. 4.
#pragma once

#include <memory>

#include "net/fabric.h"
#include "ostore/object_store.h"
#include "sim/device.h"

namespace diesel::ostore {

class ModeledStore : public ObjectStore {
 public:
  /// `backing` must outlive this store. `storage_node` is the gateway.
  /// Reads and writes share `device_spec` unless a distinct `write_spec` is
  /// given (NVMe write buffering makes the write path faster, §6.2).
  ModeledStore(net::Fabric& fabric, sim::NodeId storage_node,
               sim::DeviceSpec device_spec, ObjectStore* backing)
      : ModeledStore(fabric, storage_node, device_spec, device_spec, backing) {}

  ModeledStore(net::Fabric& fabric, sim::NodeId storage_node,
               sim::DeviceSpec device_spec, sim::DeviceSpec write_spec,
               ObjectStore* backing)
      : fabric_(fabric), storage_node_(storage_node),
        device_(std::move(device_spec)), write_device_(std::move(write_spec)),
        backing_(backing) {
    const std::string node = "n" + std::to_string(storage_node_);
    device_.BindMetrics(node);
    write_device_.BindMetrics(node);
  }

  sim::Device& device() { return device_; }
  sim::Device& write_device() { return write_device_; }

  Status Put(sim::VirtualClock& clock, sim::NodeId client,
             const std::string& key, BytesView data) override;
  Result<Bytes> Get(sim::VirtualClock& clock, sim::NodeId client,
                    const std::string& key) override;
  Result<Bytes> GetRange(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, uint64_t offset,
                         uint64_t len) override;
  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key) override;
  Result<std::vector<std::string>> List(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& prefix) override;
  Result<uint64_t> Size(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key) override;
  bool Contains(const std::string& key) const override {
    return backing_->Contains(key);
  }
  size_t NumObjects() const override { return backing_->NumObjects(); }
  uint64_t TotalBytes() const override { return backing_->TotalBytes(); }

 private:
  net::Fabric& fabric_;
  sim::NodeId storage_node_;
  sim::Device device_;
  sim::Device write_device_;
  ObjectStore* backing_;
};

}  // namespace diesel::ostore
