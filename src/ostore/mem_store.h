// In-memory object store. Two uses:
//  - tests: no devices, zero virtual time;
//  - as the backing blob map wrapped by ModeledStore for benchmarks.
#pragma once

#include <map>
#include <mutex>

#include "ostore/object_store.h"

namespace diesel::ostore {

class MemStore : public ObjectStore {
 public:
  Status Put(sim::VirtualClock& clock, sim::NodeId client,
             const std::string& key, BytesView data) override;
  Result<Bytes> Get(sim::VirtualClock& clock, sim::NodeId client,
                    const std::string& key) override;
  Result<Bytes> GetRange(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, uint64_t offset,
                         uint64_t len) override;
  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key) override;
  Result<std::vector<std::string>> List(sim::VirtualClock& clock,
                                        sim::NodeId client,
                                        const std::string& prefix) override;
  Result<uint64_t> Size(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t NumObjects() const override;
  uint64_t TotalBytes() const override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Bytes> blobs_;  // ordered for List
  uint64_t total_bytes_ = 0;
};

}  // namespace diesel::ostore
