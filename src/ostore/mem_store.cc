#include "ostore/mem_store.h"

namespace diesel::ostore {

Status MemStore::Put(sim::VirtualClock&, sim::NodeId, const std::string& key,
                     BytesView data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = blobs_.try_emplace(key);
  if (!inserted) total_bytes_ -= it->second.size();
  it->second.assign(data.begin(), data.end());
  total_bytes_ += data.size();
  return Status::Ok();
}

Result<Bytes> MemStore::Get(sim::VirtualClock&, sim::NodeId,
                            const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("object: " + key);
  return it->second;
}

Result<Bytes> MemStore::GetRange(sim::VirtualClock&, sim::NodeId,
                                 const std::string& key, uint64_t offset,
                                 uint64_t len) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("object: " + key);
  const Bytes& blob = it->second;
  if (offset + len > blob.size())
    return Status::OutOfRange("range past end of object: " + key);
  return Bytes(blob.begin() + static_cast<ptrdiff_t>(offset),
               blob.begin() + static_cast<ptrdiff_t>(offset + len));
}

Status MemStore::Delete(sim::VirtualClock&, sim::NodeId,
                        const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("object: " + key);
  total_bytes_ -= it->second.size();
  blobs_.erase(it);
  return Status::Ok();
}

Result<std::vector<std::string>> MemStore::List(sim::VirtualClock&, sim::NodeId,
                                                const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix); it != blobs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

Result<uint64_t> MemStore::Size(sim::VirtualClock&, sim::NodeId,
                                const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("object: " + key);
  return static_cast<uint64_t>(it->second.size());
}

bool MemStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.count(key) > 0;
}

size_t MemStore::NumObjects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.size();
}

uint64_t MemStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

}  // namespace diesel::ostore
