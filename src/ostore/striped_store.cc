#include "ostore/striped_store.h"

#include <algorithm>
#include <cassert>

namespace diesel::ostore {

StripedStore::StripedStore(std::vector<ObjectStore*> gateways)
    : gateways_(std::move(gateways)) {
  assert(!gateways_.empty());
  for (uint32_t g = 0; g < gateways_.size(); ++g) ring_.AddMember(g);
}

Status StripedStore::Put(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key, BytesView data) {
  return Owner(key).Put(clock, client, key, data);
}

Result<Bytes> StripedStore::Get(sim::VirtualClock& clock, sim::NodeId client,
                                const std::string& key) {
  return Owner(key).Get(clock, client, key);
}

Result<Bytes> StripedStore::GetRange(sim::VirtualClock& clock,
                                     sim::NodeId client,
                                     const std::string& key, uint64_t offset,
                                     uint64_t len) {
  return Owner(key).GetRange(clock, client, key, offset, len);
}

Status StripedStore::Delete(sim::VirtualClock& clock, sim::NodeId client,
                            const std::string& key) {
  return Owner(key).Delete(clock, client, key);
}

Result<std::vector<std::string>> StripedStore::List(sim::VirtualClock& clock,
                                                    sim::NodeId client,
                                                    const std::string& prefix) {
  std::vector<std::string> merged;
  for (ObjectStore* g : gateways_) {
    DIESEL_ASSIGN_OR_RETURN(std::vector<std::string> part,
                            g->List(clock, client, prefix));
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

Result<uint64_t> StripedStore::Size(sim::VirtualClock& clock,
                                    sim::NodeId client,
                                    const std::string& key) {
  return Owner(key).Size(clock, client, key);
}

bool StripedStore::Contains(const std::string& key) const {
  return gateways_[ring_.Owner(key)]->Contains(key);
}

size_t StripedStore::NumObjects() const {
  size_t n = 0;
  for (const ObjectStore* g : gateways_) n += g->NumObjects();
  return n;
}

uint64_t StripedStore::TotalBytes() const {
  uint64_t n = 0;
  for (const ObjectStore* g : gateways_) n += g->TotalBytes();
  return n;
}

}  // namespace diesel::ostore
