// Consistent-hash ring with virtual nodes.
//
// Used by both the Redis-like metadata tier and the Memcached baseline
// (twemproxy uses ketama-style consistent hashing). Keys map to the first
// ring point clockwise of hash(key); removing a member only remaps the keys
// that pointed at it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace diesel::kv {

class HashRing {
 public:
  explicit HashRing(uint32_t vnodes_per_member = 64)
      : vnodes_(vnodes_per_member) {}

  /// Add a member (e.g. shard index). No-op if already present.
  void AddMember(uint32_t member);
  void RemoveMember(uint32_t member);
  bool HasMember(uint32_t member) const;
  size_t NumMembers() const { return members_.size(); }

  /// Owning member for a key. Requires at least one member.
  uint32_t Owner(std::string_view key) const;
  uint32_t OwnerOfHash(uint64_t h) const;

  /// Fraction of the hash space owned by `member` (for balance tests).
  double OwnedFraction(uint32_t member) const;

 private:
  uint32_t vnodes_;
  std::map<uint64_t, uint32_t> ring_;     // point -> member
  std::vector<uint32_t> members_;
};

}  // namespace diesel::kv
