// Redis-cluster-like deployment of KV shards across simulated nodes.
//
// The DIESEL metadata plane stores key-value pairs here (Fig. 2). Shards are
// placed round-robin over the given nodes (the paper runs 16 Redis instances
// on 4 machines); keys map to shards via consistent hashing. Client
// operations pay one RPC to the owning shard plus the shard's service-loop
// time; batch puts pipeline many entries over a single round trip, which is
// what lets DIESEL servers ingest chunk metadata at high rates.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "kv/ring.h"
#include "kv/shard.h"
#include "net/fabric.h"
#include "sim/clock.h"

namespace diesel::kv {

struct KvClusterOptions {
  /// Nodes hosting shards.
  std::vector<sim::NodeId> nodes;
  uint32_t shards_per_node = 4;
  uint32_t ring_vnodes = 64;
  /// Per-operation retry around shard flaps and injected RPC drops. The
  /// default budget rides out short outages; permanently-down shards still
  /// surface Unavailable once the policy is exhausted.
  RetryPolicy retry;
};

class KvCluster {
 public:
  KvCluster(net::Fabric& fabric, KvClusterOptions options);

  size_t NumShards() const { return shards_.size(); }
  Shard& shard(uint32_t i) { return *shards_.at(i); }
  sim::NodeId ShardNode(uint32_t i) const { return shard_node_.at(i); }
  uint32_t OwnerShard(const std::string& key) const { return ring_.Owner(key); }

  // -- data plane (all charge virtual time on `clock`) --------------------
  Status Put(sim::VirtualClock& clock, sim::NodeId client, std::string key,
             std::string value);
  Result<std::string> Get(sim::VirtualClock& clock, sim::NodeId client,
                          const std::string& key);
  Status Delete(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& key);

  /// Pipelined multi-put: entries are grouped per owning shard, one RPC per
  /// shard, per-entry service time still paid at the shard.
  Status BatchPut(sim::VirtualClock& clock, sim::NodeId client,
                  std::vector<std::pair<std::string, std::string>> entries);

  /// Pipelined multi-get (one RPC per owning shard). Result i corresponds to
  /// keys[i]; missing keys yield nullopt. Unavailable if any owning shard is
  /// down.
  Result<std::vector<std::optional<std::string>>> MGet(
      sim::VirtualClock& clock, sim::NodeId client,
      const std::vector<std::string>& keys);

  /// Prefix scan across all shards, merged in key order.
  Result<std::vector<ScanEntry>> PScan(sim::VirtualClock& clock,
                                       sim::NodeId client,
                                       const std::string& prefix,
                                       size_t limit = 0);

  // -- failure injection ---------------------------------------------------
  void FailShard(uint32_t i) { shards_.at(i)->Fail(); }
  void RestartShard(uint32_t i) { shards_.at(i)->Restart(); }
  /// Fail every shard hosted on `node` (machine crash).
  void FailShardsOnNode(sim::NodeId node);
  /// Restart every shard hosted on `node` (machine back up; shards come back
  /// empty — callers redrive metadata via DieselServer::RecoverMetadata).
  void RestartShardsOnNode(sim::NodeId node);

  size_t TotalKeys() const;

  /// Forget all shard service-queue state (fresh experiment repetition).
  void ResetDevices() {
    for (auto& s : shards_) s->service().Reset();
  }

 private:
  Status CheckShardUp(uint32_t s) const;

  net::Fabric& fabric_;
  KvClusterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<sim::NodeId> shard_node_;
};

}  // namespace diesel::kv
