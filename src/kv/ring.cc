#include "kv/ring.h"

#include <algorithm>
#include <cassert>

namespace diesel::kv {

void HashRing::AddMember(uint32_t member) {
  if (HasMember(member)) return;
  members_.push_back(member);
  for (uint32_t v = 0; v < vnodes_; ++v) {
    uint64_t point = Mix64((uint64_t{member} << 32) | v);
    // Collisions across members are astronomically unlikely but keep the
    // map deterministic by skipping occupied points.
    while (ring_.count(point) > 0) point = Mix64(point);
    ring_.emplace(point, member);
  }
}

void HashRing::RemoveMember(uint32_t member) {
  auto it = std::find(members_.begin(), members_.end(), member);
  if (it == members_.end()) return;
  members_.erase(it);
  for (auto rit = ring_.begin(); rit != ring_.end();) {
    if (rit->second == member) {
      rit = ring_.erase(rit);
    } else {
      ++rit;
    }
  }
}

bool HashRing::HasMember(uint32_t member) const {
  return std::find(members_.begin(), members_.end(), member) != members_.end();
}

uint32_t HashRing::Owner(std::string_view key) const {
  // FNV-1a alone clusters similar keys (shared prefixes differ mostly in low
  // bits); the Mix64 finalizer spreads them across the whole ring.
  return OwnerOfHash(Mix64(Fnv1a64(key)));
}

uint32_t HashRing::OwnerOfHash(uint64_t h) const {
  assert(!ring_.empty() && "ring has no members");
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

double HashRing::OwnedFraction(uint32_t member) const {
  if (ring_.empty()) return 0.0;
  // Walk arcs: each point owns the arc ending at it (from previous point).
  unsigned __int128 owned = 0;
  uint64_t prev = ring_.rbegin()->first;  // wraps around
  bool first = true;
  uint64_t first_point = ring_.begin()->first;
  (void)first_point;
  for (const auto& [point, m] : ring_) {
    uint64_t arc = first ? (point + (~prev) + 1)  // wrap arc length
                         : point - prev;
    if (m == member) owned += arc;
    prev = point;
    first = false;
  }
  return static_cast<double>(owned) / static_cast<double>(~uint64_t{0});
}

}  // namespace diesel::kv
