#include "kv/cluster.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/calibration.h"

namespace diesel::kv {
namespace {

// Wire framing overhead per KV op (command name, lengths).
constexpr uint64_t kOpOverheadBytes = 16;

/// Per-op registry handles (op mix, retry count, terminal failures),
/// resolved once per op kind.
struct OpMetrics {
  obs::Counter& ops;
  obs::Counter& retries;
  obs::Counter& failures;

  explicit OpMetrics(const char* op)
      : ops(obs::Metrics().GetCounter("kv.ops", {{"op", op}})),
        retries(obs::Metrics().GetCounter("kv.retries", {{"op", op}})),
        failures(obs::Metrics().GetCounter("kv.failures", {{"op", op}})) {}

  /// Fold one finished operation in: `attempts` lambda invocations beyond
  /// the first are retries; a bad terminal status is a failure. Retries are
  /// also noted on `span` so fault runs read off the trace directly.
  void Record(uint32_t attempts, const Status& final_status,
              obs::ScopedSpan& span) {
    ops.Inc();
    if (attempts > 1) {
      retries.Inc(attempts - 1);
      span.Note("kv.retries=" + std::to_string(attempts - 1));
    }
    if (!final_status.ok()) {
      failures.Inc();
      span.Note("kv.failed: " + final_status.message());
    }
  }
};

}  // namespace

KvCluster::KvCluster(net::Fabric& fabric, KvClusterOptions options)
    : fabric_(fabric), options_(std::move(options)),
      ring_(options_.ring_vnodes) {
  assert(!options_.nodes.empty());
  uint32_t id = 0;
  for (sim::NodeId node : options_.nodes) {
    for (uint32_t j = 0; j < options_.shards_per_node; ++j) {
      shards_.push_back(std::make_unique<Shard>(
          id, sim::RedisShardSpec("kv-shard" + std::to_string(id))));
      shards_.back()->service().BindMetrics("n" + std::to_string(node));
      shard_node_.push_back(node);
      ring_.AddMember(id);
      ++id;
    }
  }
}

Status KvCluster::CheckShardUp(uint32_t s) const {
  if (!shards_.at(s)->up())
    return Status::Unavailable("kv shard " + std::to_string(s) + " down");
  return Status::Ok();
}

Status KvCluster::Put(sim::VirtualClock& clock, sim::NodeId client,
                      std::string key, std::string value) {
  static OpMetrics metrics("put");
  obs::ScopedSpan span(fabric_.tracer(), "kv.put", clock, client);
  uint32_t s = OwnerShard(key);
  Shard& shard = *shards_[s];
  uint64_t req = key.size() + value.size() + kOpOverheadBytes;
  uint32_t attempts = 0;
  Status final_status = options_.retry.Run(clock, [&]() -> Status {
    ++attempts;
    DIESEL_RETURN_IF_ERROR(CheckShardUp(s));
    Status op_status;
    // Copy (not move) into the shard so a dropped-then-retried RPC still
    // carries the full payload.
    DIESEL_RETURN_IF_ERROR(fabric_.Call(
        clock, client, shard_node_[s], req, kOpOverheadBytes,
        [&](Nanos arrival) {
          op_status = shard.Put(key, value);
          return shard.service().Serve(arrival, req);
        }));
    return op_status;
  });
  metrics.Record(attempts, final_status, span);
  return final_status;
}

Result<std::string> KvCluster::Get(sim::VirtualClock& clock, sim::NodeId client,
                                   const std::string& key) {
  static OpMetrics metrics("get");
  obs::ScopedSpan span(fabric_.tracer(), "kv.get", clock, client);
  uint32_t s = OwnerShard(key);
  Shard& shard = *shards_[s];
  uint64_t req = key.size() + kOpOverheadBytes;
  uint32_t attempts = 0;
  Result<std::string> final_result =
      options_.retry.RunResult<std::string>(clock, [&]() -> Result<std::string> {
    ++attempts;
    DIESEL_RETURN_IF_ERROR(CheckShardUp(s));
    Result<std::string> result = Status::Internal("unset");
    DIESEL_RETURN_IF_ERROR(fabric_.Call(
        clock, client, shard_node_[s], req, /*resp guess=*/256,
        [&](Nanos arrival) {
          result = shard.Get(key);
          uint64_t resp = result.ok() ? result.value().size() : 0;
          return shard.service().Serve(arrival, req + resp);
        }));
    return result;
  });
  // A NotFound Get is a semantic answer, not a failed op.
  metrics.Record(attempts,
                 final_result.status().IsNotFound() ? Status::Ok()
                                                    : final_result.status(),
                 span);
  return final_result;
}

Status KvCluster::Delete(sim::VirtualClock& clock, sim::NodeId client,
                         const std::string& key) {
  static OpMetrics metrics("delete");
  obs::ScopedSpan span(fabric_.tracer(), "kv.delete", clock, client);
  uint32_t s = OwnerShard(key);
  Shard& shard = *shards_[s];
  uint64_t req = key.size() + kOpOverheadBytes;
  uint32_t attempts = 0;
  Status final_status = options_.retry.Run(clock, [&]() -> Status {
    ++attempts;
    DIESEL_RETURN_IF_ERROR(CheckShardUp(s));
    Status op_status;
    DIESEL_RETURN_IF_ERROR(fabric_.Call(
        clock, client, shard_node_[s], req, kOpOverheadBytes,
        [&](Nanos arrival) {
          op_status = shard.Delete(key);
          return shard.service().Serve(arrival, req);
        }));
    return op_status;
  });
  metrics.Record(attempts, final_status, span);
  return final_status;
}

Status KvCluster::BatchPut(
    sim::VirtualClock& clock, sim::NodeId client,
    std::vector<std::pair<std::string, std::string>> entries) {
  static OpMetrics metrics("batch_put");
  obs::ScopedSpan span(fabric_.tracer(), "kv.batch_put", clock, client);
  // Group per owning shard, one pipelined RPC per shard.
  std::vector<std::vector<std::pair<std::string, std::string>>> per_shard(
      shards_.size());
  for (auto& [k, v] : entries) {
    per_shard[OwnerShard(k)].emplace_back(std::move(k), std::move(v));
  }
  for (uint32_t s = 0; s < per_shard.size(); ++s) {
    auto& batch = per_shard[s];
    if (batch.empty()) continue;
    Shard& shard = *shards_[s];
    uint64_t req = 0;
    for (const auto& [k, v] : batch) {
      req += k.size() + v.size() + kOpOverheadBytes;
    }
    uint32_t attempts = 0;
    Status shard_status = options_.retry.Run(clock, [&]() -> Status {
      ++attempts;
      DIESEL_RETURN_IF_ERROR(CheckShardUp(s));
      Status op_status;
      DIESEL_RETURN_IF_ERROR(fabric_.Call(
          clock, client, shard_node_[s], req, kOpOverheadBytes,
          [&](Nanos arrival) {
            // Pipelined batch: the shard pays its per-command latency once
            // and a marginal per-entry cost for the rest (Redis pipelining).
            // Entries are copied, not moved, so a dropped RPC can be
            // redriven with the batch intact.
            for (const auto& [k, v] : batch) {
              Status st = shard.Put(k, v);
              if (!st.ok()) op_status = st;
            }
            return shard.service().Serve(
                arrival, req, sim::kKvBatchEntryCost * (batch.size() - 1));
          }));
      return op_status;
    });
    metrics.Record(attempts, shard_status, span);
    if (!shard_status.ok()) return shard_status;
  }
  return Status::Ok();
}

Result<std::vector<std::optional<std::string>>> KvCluster::MGet(
    sim::VirtualClock& clock, sim::NodeId client,
    const std::vector<std::string>& keys) {
  static OpMetrics metrics("mget");
  obs::ScopedSpan span(fabric_.tracer(), "kv.mget", clock, client);
  std::vector<std::optional<std::string>> out(keys.size());
  // Group request indices per owning shard.
  std::vector<std::vector<size_t>> per_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    per_shard[OwnerShard(keys[i])].push_back(i);
  }
  for (uint32_t s = 0; s < per_shard.size(); ++s) {
    const auto& indices = per_shard[s];
    if (indices.empty()) continue;
    Shard& shard = *shards_[s];
    uint64_t req = kOpOverheadBytes;
    for (size_t i : indices) req += keys[i].size();
    uint32_t attempts = 0;
    Status shard_status = options_.retry.Run(clock, [&]() -> Status {
      ++attempts;
      DIESEL_RETURN_IF_ERROR(CheckShardUp(s));
      return fabric_.Call(
          clock, client, shard_node_[s], req, kOpOverheadBytes,
          [&](Nanos arrival) {
            uint64_t resp = 0;
            for (size_t i : indices) {
              Result<std::string> v = shard.Get(keys[i]);
              if (v.ok()) {
                resp += v.value().size();
                out[i] = std::move(v).value();
              }
            }
            return shard.service().Serve(
                arrival, req + resp,
                sim::kKvBatchEntryCost * (indices.size() - 1));
          });
    });
    metrics.Record(attempts, shard_status, span);
    DIESEL_RETURN_IF_ERROR(shard_status);
  }
  return out;
}

Result<std::vector<ScanEntry>> KvCluster::PScan(sim::VirtualClock& clock,
                                                sim::NodeId client,
                                                const std::string& prefix,
                                                size_t limit) {
  static OpMetrics metrics("pscan");
  obs::ScopedSpan span(fabric_.tracer(), "kv.pscan", clock, client);
  std::vector<ScanEntry> merged;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    Result<std::vector<ScanEntry>> part = Status::Internal("unset");
    uint32_t attempts = 0;
    Status shard_status = options_.retry.Run(clock, [&]() -> Status {
      ++attempts;
      DIESEL_RETURN_IF_ERROR(CheckShardUp(s));
      return fabric_.Call(
          clock, client, shard_node_[s], prefix.size() + kOpOverheadBytes,
          /*resp guess=*/1024,
          [&](Nanos arrival) {
            part = shard.Scan(prefix, limit);
            uint64_t resp = 0;
            if (part.ok()) {
              for (const auto& e : part.value())
                resp += e.key.size() + e.value.size();
            }
            return shard.service().Serve(arrival, resp + kOpOverheadBytes);
          });
    });
    metrics.Record(attempts, shard_status, span);
    DIESEL_RETURN_IF_ERROR(shard_status);
    DIESEL_RETURN_IF_ERROR(part.status());
    auto& items = part.value();
    merged.insert(merged.end(), std::make_move_iterator(items.begin()),
                  std::make_move_iterator(items.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const ScanEntry& a, const ScanEntry& b) { return a.key < b.key; });
  if (limit != 0 && merged.size() > limit) merged.resize(limit);
  return merged;
}

void KvCluster::FailShardsOnNode(sim::NodeId node) {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shard_node_[s] == node) shards_[s]->Fail();
  }
}

void KvCluster::RestartShardsOnNode(sim::NodeId node) {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shard_node_[s] == node) shards_[s]->Restart();
  }
}

size_t KvCluster::TotalKeys() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->NumKeys();
  return n;
}

}  // namespace diesel::kv
