// One KV shard: an ordered in-memory key-value map with a single-threaded
// service-loop device (Redis model). Ordered storage gives prefix scans
// (pscan) in O(log n + k), which the metadata schema relies on for readdir.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/device.h"

namespace diesel::kv {

struct ScanEntry {
  std::string key;
  std::string value;
};

class Shard {
 public:
  Shard(uint32_t id, sim::DeviceSpec service_spec)
      : id_(id), service_(std::move(service_spec)) {}

  uint32_t id() const { return id_; }
  sim::Device& service() { return service_; }

  bool up() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return up_;
  }

  /// Crash: all in-memory data lost, shard unavailable.
  void Fail() {
    std::lock_guard<std::mutex> lock(mutex_);
    up_ = false;
    data_.clear();
  }

  /// Restart empty (an in-memory store recovers with no data).
  void Restart() {
    std::lock_guard<std::mutex> lock(mutex_);
    up_ = true;
  }

  // Data-plane operations. These mutate/read state only; timing is charged
  // by the cluster through service(). All return Unavailable when down.
  Status Put(std::string key, std::string value);
  Result<std::string> Get(const std::string& key) const;
  Status Delete(const std::string& key);
  /// All entries whose key starts with `prefix`, in key order, up to `limit`
  /// (0 = unlimited).
  Result<std::vector<ScanEntry>> Scan(const std::string& prefix,
                                      size_t limit = 0) const;

  size_t NumKeys() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return data_.size();
  }

 private:
  uint32_t id_;
  sim::Device service_;
  mutable std::mutex mutex_;
  bool up_ = true;
  std::map<std::string, std::string> data_;
};

}  // namespace diesel::kv
