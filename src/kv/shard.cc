#include "kv/shard.h"

namespace diesel::kv {

Status Shard::Put(std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!up_) return Status::Unavailable("shard down");
  data_[std::move(key)] = std::move(value);
  return Status::Ok();
}

Result<std::string> Shard::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!up_) return Status::Unavailable("shard down");
  auto it = data_.find(key);
  if (it == data_.end()) return Status::NotFound("key: " + key);
  return it->second;
}

Status Shard::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!up_) return Status::Unavailable("shard down");
  return data_.erase(key) > 0 ? Status::Ok()
                              : Status::NotFound("key: " + key);
}

Result<std::vector<ScanEntry>> Shard::Scan(const std::string& prefix,
                                           size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!up_) return Status::Unavailable("shard down");
  std::vector<ScanEntry> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back({it->first, it->second});
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

}  // namespace diesel::kv
