#include "prefetch/scheduler.h"

#include <algorithm>

#include "obs/metrics.h"

namespace diesel::prefetch {
namespace {

struct SchedCounters {
  obs::Counter& issued = obs::Metrics().GetCounter("prefetch.issued");
  obs::Counter& completed = obs::Metrics().GetCounter("prefetch.completed");
  obs::Counter& cancelled = obs::Metrics().GetCounter("prefetch.cancelled");
  obs::Counter& skipped_resident =
      obs::Metrics().GetCounter("prefetch.skipped_resident");
  obs::Counter& skipped_down =
      obs::Metrics().GetCounter("prefetch.skipped_down");
  obs::Counter& rescales = obs::Metrics().GetCounter("prefetch.rescales");
  obs::Counter& retargeted = obs::Metrics().GetCounter("prefetch.retargeted");
  obs::Histo& queue_depth =
      obs::Metrics().GetHistogram("prefetch.queue_depth");
};

SchedCounters& Counters() {
  static SchedCounters c;
  return c;
}

}  // namespace

PrefetchScheduler::PrefetchScheduler(cache::TaskCache& cache,
                                     net::Fabric& fabric,
                                     const core::MetadataSnapshot& snapshot,
                                     PrefetchOptions options)
    : cache_(cache),
      fabric_(fabric),
      snapshot_(snapshot),
      options_(options) {
  if (options_.streams_per_node == 0) options_.streams_per_node = 1;
  // Payload estimate per chunk, for budget accounting before the real blob
  // size is known.
  chunk_bytes_.assign(snapshot_.chunks().size(), 0);
  for (size_t ci = 0; ci < chunk_bytes_.size(); ++ci) {
    for (uint32_t fi : snapshot_.FilesOfChunk(ci)) {
      chunk_bytes_[ci] += snapshot_.files()[fi].length;
    }
  }
}

PrefetchScheduler::~PrefetchScheduler() { FinishEpoch(); }

uint64_t PrefetchScheduler::EffectiveBudget() const {
  uint64_t base = options_.budget_bytes_per_node;
  if (base == 0) {
    // Inherit half the cache partition: pinned prefetch bytes may never
    // saturate capacity, or fills start getting denied (every resident chunk
    // pinned) and the cancelled chunks fall back to on-demand loads on the
    // critical path — worse than no prefetch at all.
    base = cache_.options().per_node_capacity_bytes / 2;
  }
  if (const BudgetGovernor* g = governor_.load(std::memory_order_acquire)) {
    return g->PrefetchBudgetBytes(base);
  }
  return base;
}

void PrefetchScheduler::SetBudgetGovernor(const BudgetGovernor* governor) {
  governor_.store(governor, std::memory_order_release);
}

void PrefetchScheduler::StartEpoch(const shuffle::ShufflePlan& plan,
                                   Nanos now) {
  FinishEpoch();
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_ = std::make_unique<AccessSchedule>(
      AccessSchedule::Build(plan, snapshot_));

  // Group the epoch's chunks by owner node, keeping first-access order.
  nodes_.clear();
  std::vector<sim::NodeId> owners;
  std::vector<std::vector<size_t>> fills;
  for (size_t ci : schedule_->chunks_by_first_access()) {
    auto owner = cache_.OwnerNodeOfChunk(ci);
    if (!owner.ok()) continue;
    auto it = std::find(owners.begin(), owners.end(), *owner);
    size_t slot;
    if (it == owners.end()) {
      slot = owners.size();
      owners.push_back(*owner);
      fills.emplace_back();
    } else {
      slot = static_cast<size_t>(it - owners.begin());
    }
    fills[slot].push_back(ci);
  }
  nodes_.resize(owners.size());
  for (size_t i = 0; i < owners.size(); ++i) {
    nodes_[i].node = owners[i];
    nodes_[i].fill_order = std::move(fills[i]);
    nodes_[i].streams.assign(options_.streams_per_node,
                             sim::VirtualClock(now));
  }

  if (options_.belady_eviction) cache_.InstallEvictionOracle(schedule_.get());
  cache_.SetEpochCursor(0);
  active_ = true;
  AdvanceLocked(0, now);
}

void PrefetchScheduler::Advance(size_t position, Nanos now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  AdvanceLocked(position, now);
}

void PrefetchScheduler::AttachMembership(membership::MembershipTable& table) {
  table.Subscribe(this);
}

void PrefetchScheduler::OnMembershipChange(
    const membership::MembershipChange& change) {
  if (change.kind == membership::ChangeKind::kBootstrap) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  RescaleLocked(change.at);
}

void PrefetchScheduler::RescaleLocked(Nanos now) {
  Counters().rescales.Inc();
  ++stats_.rescales;

  // Everything not yet issued goes back in the pot; everything issued is
  // already accounted (completed or cancelled at issue time), so the
  // invariant needs no repair.
  std::vector<char> pending(chunk_bytes_.size(), 0);
  for (const NodeState& ns : nodes_) {
    for (size_t i = ns.next; i < ns.fill_order.size(); ++i) {
      pending[ns.fill_order[i]] = 1;
    }
  }

  // Collect the live pins; they follow their chunks to the new owners'
  // budget books. Deques must stay in first-access order for the release
  // scan, so they are re-distributed by a stable first-access sort.
  std::vector<PinRec> pins;
  for (NodeState& ns : nodes_) {
    for (const PinRec& p : ns.pins) pins.push_back(p);
  }
  std::stable_sort(pins.begin(), pins.end(),
                   [](const PinRec& a, const PinRec& b) {
                     return a.first_access < b.first_access;
                   });

  // Surviving nodes keep their stream clocks (in-flight fill tails stay
  // charged); new owners start fresh at `now`.
  std::vector<NodeState> old_nodes = std::move(nodes_);
  nodes_.clear();
  auto slot_for = [&](sim::NodeId node) -> NodeState& {
    for (NodeState& ns : nodes_) {
      if (ns.node == node) return ns;
    }
    nodes_.emplace_back();
    NodeState& ns = nodes_.back();
    ns.node = node;
    for (NodeState& old : old_nodes) {
      if (old.node == node) {
        ns.streams = std::move(old.streams);
        for (sim::VirtualClock& st : ns.streams) st.AdvanceTo(now);
        break;
      }
    }
    if (ns.streams.empty()) {
      ns.streams.assign(options_.streams_per_node, sim::VirtualClock(now));
    }
    return ns;
  };

  // Re-bucket pending fills by the post-migration owner, preserving
  // first-access order within each node.
  for (size_t ci : schedule_->chunks_by_first_access()) {
    if (pending[ci] == 0) continue;
    auto owner = cache_.OwnerNodeOfChunk(ci);
    if (!owner.ok()) continue;
    NodeState& ns = slot_for(*owner);
    ns.fill_order.push_back(ci);
    bool moved = true;
    for (const NodeState& old : old_nodes) {
      for (size_t i = old.next; i < old.fill_order.size(); ++i) {
        if (old.fill_order[i] == ci) {
          moved = old.node != *owner;
          break;
        }
      }
    }
    if (moved) {
      Counters().retargeted.Inc();
      ++stats_.retargeted;
    }
  }
  for (const PinRec& p : pins) {
    auto owner = cache_.OwnerNodeOfChunk(p.chunk);
    if (!owner.ok()) continue;
    NodeState& ns = slot_for(*owner);
    ns.pins.push_back(p);
    ns.outstanding_bytes += p.bytes;
  }

  // The new window opens immediately: fills the rescale newly admits are
  // issued from the current cursor.
  AdvanceLocked(last_position_, now);
}

void PrefetchScheduler::AdvanceLocked(size_t position, Nanos now) {
  last_position_ = position;
  cache_.SetEpochCursor(position);
  // Release pins the cursor has passed: once a chunk's first access is
  // behind us the Belady oracle (or FIFO age) decides its fate like any
  // other resident chunk.
  for (NodeState& ns : nodes_) {
    while (!ns.pins.empty() && ns.pins.front().first_access < position) {
      const PinRec& rec = ns.pins.front();
      cache_.Unpin(rec.chunk);
      ns.outstanding_bytes -= std::min(ns.outstanding_bytes, rec.bytes);
      ns.pins.pop_front();
    }
  }
  IssueFillsLocked(position, now);

  // Queue depth: streams whose fill tail extends past the foreground's now.
  uint64_t depth = 0;
  for (const NodeState& ns : nodes_) {
    for (const sim::VirtualClock& st : ns.streams) {
      if (st.now() > now) ++depth;
    }
  }
  Counters().queue_depth.Observe(static_cast<double>(depth));
}

void PrefetchScheduler::IssueFillsLocked(size_t position, Nanos now) {
  const uint64_t budget = EffectiveBudget();
  const size_t unlimited = static_cast<size_t>(-1);
  for (NodeState& ns : nodes_) {
    while (ns.next < ns.fill_order.size()) {
      const size_t ci = ns.fill_order[ns.next];
      const uint64_t fa = schedule_->FirstAccess(ci);
      if (options_.lookahead_files != unlimited &&
          fa > position + options_.lookahead_files) {
        break;  // beyond the lookahead window — revisit on a later Advance
      }
      const uint64_t est = chunk_bytes_[ci];
      // Budget gate: allow the first fill through even when a single chunk
      // exceeds the budget, otherwise the scheduler would livelock.
      if (budget != 0 && ns.outstanding_bytes > 0 &&
          ns.outstanding_bytes + est > budget) {
        break;
      }

      if (cache_.ChunkResident(ci)) {
        // Nothing to fetch; pin so capacity pressure from later fills can't
        // evict it before its access arrives. The pin still occupies cache
        // capacity, so it charges the budget like a fill.
        Counters().skipped_resident.Inc();
        ++stats_.skipped_resident;
        cache_.Pin(ci);
        ns.pins.push_back(PinRec{ci, fa, est});
        ns.outstanding_bytes += est;
        ++ns.next;
        continue;
      }

      // Earliest-finishing stream takes the fill.
      sim::VirtualClock* stream = &ns.streams.front();
      for (sim::VirtualClock& st : ns.streams) {
        if (st.now() < stream->now()) stream = &st;
      }
      stream->AdvanceTo(now);

      if (!fabric_.NodeAvailable(ns.node, stream->now())) {
        // Owner is flapped: don't burn the retry budget in the background;
        // the foreground's on-demand path (with failover) covers this chunk.
        Counters().skipped_down.Inc();
        ++stats_.skipped_down;
        ++ns.next;
        continue;
      }

      cache_.Pin(ci);
      Counters().issued.Inc();
      ++stats_.issued;
      auto out = cache_.PrefetchChunk(*stream, ci);
      if (!out.ok() || (!out->inserted && !out->already_resident)) {
        // Fetch failed or capacity denied the insert: the fill is aborted
        // and the pin released, so the foreground path stays unobstructed.
        Counters().cancelled.Inc();
        ++stats_.cancelled;
        cache_.Unpin(ci);
        ++ns.next;
        continue;
      }
      Counters().completed.Inc();
      ++stats_.completed;
      ns.pins.push_back(PinRec{ci, fa, out->bytes});
      ns.outstanding_bytes += out->bytes;
      ++ns.next;
    }
  }
}

void PrefetchScheduler::FinishEpoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_ && nodes_.empty()) return;
  for (NodeState& ns : nodes_) {
    while (!ns.pins.empty()) {
      cache_.Unpin(ns.pins.front().chunk);
      ns.pins.pop_front();
    }
    ns.outstanding_bytes = 0;
  }
  nodes_.clear();
  if (options_.belady_eviction) cache_.InstallEvictionOracle(nullptr);
  active_ = false;
  // schedule_ stays alive so late inspector reads (schedule()) remain valid
  // until the next StartEpoch replaces it.
}

const AccessSchedule* PrefetchScheduler::schedule() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return schedule_.get();
}

PrefetchSchedulerStats PrefetchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace diesel::prefetch
