#include "prefetch/access_schedule.h"

#include <algorithm>

namespace diesel::prefetch {

AccessSchedule AccessSchedule::Build(const shuffle::ShufflePlan& plan,
                                     const core::MetadataSnapshot& snapshot) {
  AccessSchedule s;
  s.num_positions_ = plan.file_order.size();
  s.accesses_.resize(snapshot.chunks().size());
  for (size_t pos = 0; pos < plan.file_order.size(); ++pos) {
    const core::FileMeta& meta = snapshot.files().at(plan.file_order[pos]);
    size_t ci = snapshot.ChunkIndex(meta.chunk);
    if (ci == static_cast<size_t>(-1)) continue;  // stale plan entry
    // Positions are visited in increasing order, so each list stays sorted.
    s.accesses_[ci].push_back(pos);
  }
  for (size_t ci = 0; ci < s.accesses_.size(); ++ci) {
    if (!s.accesses_[ci].empty()) s.order_.push_back(ci);
  }
  std::sort(s.order_.begin(), s.order_.end(), [&](size_t a, size_t b) {
    return s.accesses_[a].front() < s.accesses_[b].front();
  });
  return s;
}

const std::vector<uint64_t>& AccessSchedule::AccessesOf(
    size_t chunk_index) const {
  static const std::vector<uint64_t> kEmpty;
  if (chunk_index >= accesses_.size()) return kEmpty;
  return accesses_[chunk_index];
}

uint64_t AccessSchedule::FirstAccess(size_t chunk_index) const {
  const auto& a = AccessesOf(chunk_index);
  return a.empty() ? kNever : a.front();
}

uint64_t AccessSchedule::LastAccess(size_t chunk_index) const {
  const auto& a = AccessesOf(chunk_index);
  return a.empty() ? kNever : a.back();
}

uint64_t AccessSchedule::NextAccessAfter(size_t chunk_index,
                                         uint64_t cursor) const {
  const auto& a = AccessesOf(chunk_index);
  auto it = std::lower_bound(a.begin(), a.end(), cursor);
  return it == a.end() ? kNever : *it;
}

}  // namespace diesel::prefetch
