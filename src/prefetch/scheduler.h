// Clairvoyant prefetch scheduler for the task-grained cache.
//
// Turns the epoch's AccessSchedule into background chunk fills that run
// ahead of the training loop: per owner node, chunks are fetched in
// first-access order on a small set of detached stream clocks, bounded by a
// position lookahead and a byte budget so prefetch never floods the cache
// (capacity), the backend (stream cap) or the network (fills share the same
// simulated devices as foreground reads, so bandwidth contention is
// modeled, not assumed away). Filled and soon-needed chunks are pinned
// until the cursor passes their first access; with `belady_eviction` the
// schedule is also installed as the cache's eviction oracle, replacing FIFO
// with farthest-next-access (Belady's MIN).
//
// Fault behavior: a fill against a flapped owner is skipped
// (prefetch.skipped_down) and left to the foreground's on-demand path; a
// fill that starts and fails (retry budget exhausted, capacity denied)
// is cancelled and unpinned — pins can never outlive their epoch
// (FinishEpoch releases every remaining pin), so injected chaos degrades
// prefetch to on-demand instead of wedging the cache.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/task_cache.h"
#include "core/snapshot.h"
#include "membership/membership.h"
#include "net/fabric.h"
#include "prefetch/access_schedule.h"
#include "shuffle/shuffle.h"

namespace diesel::prefetch {

/// QoS hook over the scheduler's per-node byte budget (src/tenant). With a
/// governor installed, every budget decision passes the configured base
/// through it — the multi-tenant fabric returns this tenant's weighted fair
/// share so one job's fills cannot monopolize prefetch bandwidth.
class BudgetGovernor {
 public:
  virtual ~BudgetGovernor() = default;

  /// Final per-node prefetch byte budget given the scheduler's configured
  /// base (0 = unbounded). Return `base` unchanged to opt out.
  virtual uint64_t PrefetchBudgetBytes(uint64_t base) const = 0;
};

struct PrefetchOptions {
  /// Fill chunks whose first access lies within this many file-order
  /// positions of the training cursor; SIZE_MAX = the whole epoch (the byte
  /// budget still bounds how far fills actually run ahead).
  size_t lookahead_files = static_cast<size_t>(-1);
  /// Concurrent background fill streams per owner node.
  uint32_t streams_per_node = 2;
  /// Cap on pinned prefetch bytes per node (in-flight fills plus resident
  /// chunks pinned ahead of their access); 0 inherits HALF the cache's
  /// per_node_capacity_bytes so pins can never saturate the partition
  /// (unbounded when that is 0 too).
  uint64_t budget_bytes_per_node = 0;
  /// Install the schedule as the cache's Belady eviction oracle. Off keeps
  /// FIFO eviction (the "next-group"-style ablation arm).
  bool belady_eviction = true;
};

struct PrefetchSchedulerStats {
  uint64_t issued = 0;            // background fetches started
  uint64_t completed = 0;         // fetches that left the chunk resident
  uint64_t cancelled = 0;         // started but aborted (error / capacity)
  uint64_t skipped_resident = 0;  // schedule entries already cached
  uint64_t skipped_down = 0;      // owner flapped at issue time — not started
  uint64_t rescales = 0;          // membership epochs the schedule survived
  uint64_t retargeted = 0;        // pending fills re-bucketed to a new owner
};

class PrefetchScheduler : public membership::MembershipListener {
 public:
  /// All references must outlive the scheduler. `snapshot` must be the one
  /// the cache serves.
  PrefetchScheduler(cache::TaskCache& cache, net::Fabric& fabric,
                    const core::MetadataSnapshot& snapshot,
                    PrefetchOptions options);
  ~PrefetchScheduler();

  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  /// Install the epoch's plan: derives the AccessSchedule, (optionally)
  /// installs the Belady oracle, resets the per-node stream clocks to `now`
  /// and issues the initial fill window.
  void StartEpoch(const shuffle::ShufflePlan& plan, Nanos now);

  /// Advance the training cursor to `position` (epoch file-order index) at
  /// virtual time `now`: releases pins the cursor has passed and issues
  /// every fill the lookahead and budget newly admit. Called by the
  /// training loop (e.g. once per mini-batch).
  void Advance(size_t position, Nanos now);

  /// End of epoch: release every remaining pin and uninstall the oracle.
  /// Idempotent; also run by StartEpoch and the destructor.
  void FinishEpoch();

  /// Subscribe to membership churn: every epoch bump recomputes the fill
  /// schedule against the new chunk ownership. Attach the cache to the same
  /// table FIRST — the scheduler re-buckets against post-migration
  /// ownership. The table must outlive the scheduler.
  void AttachMembership(membership::MembershipTable& table);

  /// Membership epoch boundary (MembershipListener): pending fills are
  /// re-bucketed to their new owner nodes (first-access order preserved),
  /// live pins follow their chunks, and surviving stream clocks carry over
  /// so in-flight work is never double-counted — `issued == completed +
  /// cancelled` holds across any churn sequence.
  void OnMembershipChange(const membership::MembershipChange& change) override;

  /// Install the multi-tenant budget governor (nullptr restores the
  /// ungoverned budget). The governor must outlive the scheduler.
  void SetBudgetGovernor(const BudgetGovernor* governor);

  /// The current epoch's schedule (nullptr between epochs).
  const AccessSchedule* schedule() const;

  PrefetchSchedulerStats stats() const;
  const PrefetchOptions& options() const { return options_; }

 private:
  struct PinRec {
    size_t chunk = 0;
    uint64_t first_access = 0;
    uint64_t bytes = 0;  // budget charge (0 for already-resident pins)
  };

  struct NodeState {
    sim::NodeId node = sim::kInvalidNode;
    std::vector<size_t> fill_order;  // owned chunks, first-access order
    size_t next = 0;                 // fill_order cursor
    std::vector<sim::VirtualClock> streams;
    std::deque<PinRec> pins;  // released as the cursor passes first_access
    uint64_t outstanding_bytes = 0;
  };

  void AdvanceLocked(size_t position, Nanos now);
  void IssueFillsLocked(size_t position, Nanos now);
  void RescaleLocked(Nanos now);
  uint64_t EffectiveBudget() const;

  cache::TaskCache& cache_;
  net::Fabric& fabric_;
  const core::MetadataSnapshot& snapshot_;
  PrefetchOptions options_;
  /// Multi-tenant budget governor (null = ungoverned). Lock-free: budget
  /// checks run under mutex_ but installs may come from outside the epoch.
  std::atomic<const BudgetGovernor*> governor_{nullptr};
  std::vector<uint64_t> chunk_bytes_;  // payload estimate per chunk

  mutable std::mutex mutex_;
  bool active_ = false;
  std::unique_ptr<AccessSchedule> schedule_;
  std::vector<NodeState> nodes_;
  PrefetchSchedulerStats stats_;
  size_t last_position_ = 0;  // latest Advance cursor (rescales resume here)
};

}  // namespace diesel::prefetch
