// Epoch access schedule derived from a chunk-wise shuffle plan.
//
// DIESEL's chunk-wise shuffle (§4.3) fixes the entire per-epoch access
// sequence the moment the ShufflePlan is drawn: every file read, and hence
// every chunk touch, is known in advance. This class materializes that
// knowledge as, per chunk, the sorted list of file-order positions at which
// the chunk is accessed — the substrate for both clairvoyant prefetching
// (fill chunks in first-access order ahead of the cursor) and Belady
// eviction (evict the resident chunk with the farthest next access), per
// Dryden et al., "Clairvoyant Prefetching for Distributed Machine Learning
// I/O".
#pragma once

#include <cstdint>
#include <vector>

#include "cache/task_cache.h"
#include "core/snapshot.h"
#include "shuffle/shuffle.h"

namespace diesel::prefetch {

class AccessSchedule : public cache::EvictionOracle {
 public:
  static constexpr uint64_t kNever = cache::EvictionOracle::kNever;

  AccessSchedule() = default;

  /// Derive the schedule: one pass over `plan.file_order`, mapping each file
  /// to its chunk via the snapshot. O(files) time, O(files) space.
  static AccessSchedule Build(const shuffle::ShufflePlan& plan,
                              const core::MetadataSnapshot& snapshot);

  /// Number of chunk slots (== snapshot.chunks().size()).
  size_t num_chunks() const { return accesses_.size(); }
  /// Epoch length in file-order positions.
  size_t num_positions() const { return num_positions_; }

  /// Sorted positions at which `chunk_index` is accessed (empty when the
  /// chunk is absent from the epoch — e.g. a partitioned plan).
  const std::vector<uint64_t>& AccessesOf(size_t chunk_index) const;

  uint64_t FirstAccess(size_t chunk_index) const;  // kNever when unused
  uint64_t LastAccess(size_t chunk_index) const;   // kNever when unused

  /// Belady distance: first access position >= cursor, kNever when the
  /// chunk is dead for the rest of the epoch.
  uint64_t NextAccessAfter(size_t chunk_index,
                           uint64_t cursor) const override;

  /// Chunks accessed this epoch, ordered by first access — the clairvoyant
  /// fill order.
  const std::vector<size_t>& chunks_by_first_access() const { return order_; }

 private:
  size_t num_positions_ = 0;
  std::vector<std::vector<uint64_t>> accesses_;  // chunk -> sorted positions
  std::vector<size_t> order_;                    // chunks by first access
};

}  // namespace diesel::prefetch
