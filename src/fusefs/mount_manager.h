// FUSE mount management (§5: "Separate APIs are provided to users to manage
// the FUSE subsystem (i.e., mount, unmount)").
//
// A MountManager keeps a table of mountpoints, each backed by a FuseMount
// whose daemon runs a pool of DIESEL clients. Paths are resolved
// longest-prefix-first, so nested mountpoints behave like a real VFS.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fusefs/fusefs.h"

namespace diesel::fusefs {

class MountManager {
 public:
  /// Mount a DIESEL dataset at `mountpoint` (absolute, normalized, e.g.
  /// "/mnt/imagenet"). `daemon_clients` are the FUSE daemon's worker clients
  /// (>= 1, must outlive the manager). `dataset_prefix` maps the mount root
  /// onto the dataset's internal namespace (e.g. "/imagenet", so
  /// "/mnt/imagenet/train/x" resolves to "/imagenet/train/x").
  /// AlreadyExists if occupied.
  Result<FuseMount*> Mount(const std::string& mountpoint,
                           std::vector<core::DieselClient*> daemon_clients,
                           const std::string& dataset_prefix = "");

  /// Unmount. NotFound if nothing is mounted there.
  Status Unmount(const std::string& mountpoint);

  /// Longest-prefix resolution: "/mnt/imagenet/train/x.jpg" ->
  /// (mount at /mnt/imagenet, "<dataset_prefix>/train/x.jpg"). NotFound if
  /// no mount covers the path.
  Result<std::pair<FuseMount*, std::string>> Resolve(
      const std::string& path) const;

  /// Convenience: resolve + read through the owning mount.
  Result<Bytes> ReadFile(sim::VirtualClock& clock, const std::string& path);
  Result<PosixStat> Stat(sim::VirtualClock& clock, const std::string& path,
                         bool need_size);
  Result<std::vector<core::DirEntry>> ReadDir(sim::VirtualClock& clock,
                                              const std::string& path);

  std::vector<std::string> Mountpoints() const;
  size_t NumMounts() const;

 private:
  struct Entry {
    std::unique_ptr<FuseMount> mount;
    std::string prefix;
  };

  static bool IsValidMountpoint(const std::string& mp);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> mounts_;
};

}  // namespace diesel::fusefs
