#include <deque>

#include "fusefs/posix_like.h"

namespace diesel::fusefs {

Result<WalkStats> LsRecursive(PosixLike& fs, sim::VirtualClock& clock,
                              const std::string& root, bool with_size) {
  WalkStats stats;
  std::deque<std::string> pending{root};
  while (!pending.empty()) {
    std::string dir = std::move(pending.front());
    pending.pop_front();
    DIESEL_ASSIGN_OR_RETURN(std::vector<core::DirEntry> entries,
                            fs.ReadDir(clock, dir));
    ++stats.dirs_visited;
    for (const core::DirEntry& e : entries) {
      ++stats.entries_listed;
      std::string full = (dir == "/" ? "" : dir) + "/" + e.name;
      if (e.is_dir) {
        pending.push_back(full);
      } else {
        // ls --color stats every entry; -l additionally needs the size.
        DIESEL_ASSIGN_OR_RETURN(PosixStat st,
                                fs.Stat(clock, full, with_size));
        (void)st;
        ++stats.stats_issued;
      }
    }
  }
  return stats;
}

}  // namespace diesel::fusefs
