// XfsFs: local high-performance filesystem baseline for the Fig. 10c
// namespace walk (the paper runs XFS on one NVMe SSD). An in-memory
// directory tree whose operations are charged to a single XFS-class device —
// kernel-native, so no FUSE crossings and no network.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "fusefs/posix_like.h"
#include "sim/device.h"

namespace diesel::fusefs {

class XfsFs : public PosixLike {
 public:
  XfsFs();

  /// Register a file (metadata only; the walk never reads contents).
  void AddFile(const std::string& path, uint64_t size);

  Result<std::vector<core::DirEntry>> ReadDir(sim::VirtualClock& clock,
                                              const std::string& path) override;
  Result<PosixStat> Stat(sim::VirtualClock& clock, const std::string& path,
                         bool need_size) override;

  size_t NumFiles() const;

 private:
  sim::Device device_;
  mutable std::mutex mutex_;
  std::map<std::string, uint64_t> files_;                // path -> size
  std::map<std::string, std::set<std::string>> dirs_;    // dir -> children
  std::set<std::string> dir_names_;
};

}  // namespace diesel::fusefs
