#include "fusefs/localfs.h"

#include "sim/calibration.h"

namespace diesel::fusefs {
namespace {

std::string ParentOf(const std::string& path) {
  size_t pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

std::string NameOf(const std::string& path) {
  size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

XfsFs::XfsFs() : device_(sim::XfsSpec()) {}

void XfsFs::AddFile(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  files_[path] = size;
  std::string child = NameOf(path);
  for (std::string dir = ParentOf(path);; dir = ParentOf(dir)) {
    bool inserted = dirs_[dir].insert(child).second;
    dir_names_.insert(dir);
    if (!inserted || dir == "/") break;
    child = NameOf(dir);
  }
}

Result<std::vector<core::DirEntry>> XfsFs::ReadDir(sim::VirtualClock& clock,
                                                   const std::string& path) {
  std::vector<core::DirEntry> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = dirs_.find(path);
    if (it == dirs_.end()) {
      if (path != "/") return Status::NotFound("no such dir: " + path);
    } else {
      out.reserve(it->second.size());
      for (const std::string& name : it->second) {
        std::string full = (path == "/" ? "" : path) + "/" + name;
        out.push_back({name, files_.count(full) == 0});
      }
    }
  }
  // getdents64 batches entries; charge one op per page of ~256 entries.
  size_t pages = out.size() / 256 + 1;
  Nanos t = clock.now();
  for (size_t i = 0; i < pages; ++i) t = device_.Serve(t, 4096);
  clock.AdvanceTo(t);
  return out;
}

Result<PosixStat> XfsFs::Stat(sim::VirtualClock& clock, const std::string& path,
                              bool need_size) {
  (void)need_size;  // local inodes carry size; no extra cost
  PosixStat st;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(path);
    if (it != files_.end()) {
      st.size = it->second;
    } else if (dir_names_.count(path) > 0 || path == "/") {
      st.is_dir = true;
    } else {
      return Status::NotFound("no such path: " + path);
    }
  }
  clock.AdvanceTo(device_.Serve(clock.now(), 256));
  return st;
}

size_t XfsFs::NumFiles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

}  // namespace diesel::fusefs
