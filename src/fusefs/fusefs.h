// DIESEL-FUSE: POSIX facade over libDIESEL (§5 "User Interface").
//
// Models the userspace-filesystem costs the paper measures: every request
// pays a user/kernel crossing (context switches), and the kernel splits
// large reads into requests of at most kFuseMaxRead (128 KB) that are
// forwarded to the userspace daemon. The daemon runs a multi-threaded loop
// with multiple DIESEL clients per mount, so concurrent POSIX readers map
// onto different clients (the paper's optimization for FUSE throughput).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/client.h"
#include "fusefs/posix_like.h"

namespace diesel::fusefs {

struct FuseStats {
  uint64_t requests = 0;        // kernel->daemon request count
  uint64_t crossings_ns = 0;    // total crossing overhead charged
  uint64_t bytes_read = 0;
};

class FuseMount : public PosixLike {
 public:
  /// `clients` are the daemon's worker clients (>= 1); they must outlive the
  /// mount. Requests round-robin across them.
  explicit FuseMount(std::vector<core::DieselClient*> clients);

  /// open(2) + read(2) loop + close(2): fetch a whole file through the FUSE
  /// request pipeline.
  Result<Bytes> ReadFile(sim::VirtualClock& clock, const std::string& path);

  /// create(2) + write(2) loop + close(2): store a file through the daemon
  /// (buffered into the client's current chunk; DL_flush publishes it).
  Status WriteFile(sim::VirtualClock& clock, const std::string& path,
                   BytesView content);

  /// Flush all daemon clients' pending chunks (fsync(2)-ish).
  Status Flush(sim::VirtualClock& clock);

  /// §5: "DIESEL provides helper functions to let the user read the
  /// generated file list" — the chunk-wise-shuffle control file. Reading it
  /// generates a fresh epoch order (group size `group_size`) and returns one
  /// full path per line; training code then opens files in exactly that
  /// order. Requires a loaded snapshot on the daemon clients.
  Result<std::string> ReadShuffleList(sim::VirtualClock& clock,
                                      size_t group_size, uint64_t epoch_seed);

  Result<std::vector<core::DirEntry>> ReadDir(sim::VirtualClock& clock,
                                              const std::string& path) override;

  Result<PosixStat> Stat(sim::VirtualClock& clock, const std::string& path,
                         bool need_size) override;

  FuseStats stats() const {
    return {requests_.load(), crossings_ns_.load(), bytes_read_.load()};
  }

 private:
  core::DieselClient* PickClient();
  /// Charge one kernel<->userspace crossing on `clock`.
  void Crossing(sim::VirtualClock& clock);

  std::vector<core::DieselClient*> clients_;
  std::atomic<size_t> next_client_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> crossings_ns_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

}  // namespace diesel::fusefs
