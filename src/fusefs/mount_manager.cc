#include "fusefs/mount_manager.h"

namespace diesel::fusefs {

bool MountManager::IsValidMountpoint(const std::string& mp) {
  if (mp.empty() || mp[0] != '/') return false;
  if (mp.size() > 1 && mp.back() == '/') return false;  // normalized
  return mp.find("//") == std::string::npos;
}

Result<FuseMount*> MountManager::Mount(
    const std::string& mountpoint,
    std::vector<core::DieselClient*> daemon_clients,
    const std::string& dataset_prefix) {
  if (!IsValidMountpoint(mountpoint))
    return Status::InvalidArgument("bad mountpoint: " + mountpoint);
  if (daemon_clients.empty())
    return Status::InvalidArgument("mount needs at least one daemon client");
  std::lock_guard<std::mutex> lock(mutex_);
  if (mounts_.count(mountpoint) > 0)
    return Status::AlreadyExists("already mounted: " + mountpoint);
  Entry entry{std::make_unique<FuseMount>(std::move(daemon_clients)),
              dataset_prefix};
  FuseMount* raw = entry.mount.get();
  mounts_.emplace(mountpoint, std::move(entry));
  return raw;
}

Status MountManager::Unmount(const std::string& mountpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return mounts_.erase(mountpoint) > 0
             ? Status::Ok()
             : Status::NotFound("not mounted: " + mountpoint);
}

Result<std::pair<FuseMount*, std::string>> MountManager::Resolve(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Longest prefix whose boundary is a path separator (or exact match).
  const std::string* best = nullptr;
  const Entry* entry = nullptr;
  for (const auto& [mp, e] : mounts_) {
    bool covers = path.compare(0, mp.size(), mp) == 0 &&
                  (path.size() == mp.size() || path[mp.size()] == '/' ||
                   mp == "/");
    if (!covers) continue;
    if (best == nullptr || mp.size() > best->size()) {
      best = &mp;
      entry = &e;
    }
  }
  if (entry == nullptr)
    return Status::NotFound("no mount covers path: " + path);
  std::string rel = *best == "/" ? path : path.substr(best->size());
  if (rel.empty()) rel = "/";
  return std::make_pair(entry->mount.get(), entry->prefix + rel);
}

Result<Bytes> MountManager::ReadFile(sim::VirtualClock& clock,
                                     const std::string& path) {
  DIESEL_ASSIGN_OR_RETURN(auto target, Resolve(path));
  return target.first->ReadFile(clock, target.second);
}

Result<PosixStat> MountManager::Stat(sim::VirtualClock& clock,
                                     const std::string& path, bool need_size) {
  DIESEL_ASSIGN_OR_RETURN(auto target, Resolve(path));
  return target.first->Stat(clock, target.second, need_size);
}

Result<std::vector<core::DirEntry>> MountManager::ReadDir(
    sim::VirtualClock& clock, const std::string& path) {
  DIESEL_ASSIGN_OR_RETURN(auto target, Resolve(path));
  return target.first->ReadDir(clock, target.second);
}

std::vector<std::string> MountManager::Mountpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(mounts_.size());
  for (const auto& [mp, e] : mounts_) out.push_back(mp);
  return out;
}

size_t MountManager::NumMounts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mounts_.size();
}

}  // namespace diesel::fusefs
