// Minimal POSIX-ish interface the namespace-walk benchmarks (ls -R / ls -lR,
// Fig. 10c) traverse. Implemented by FuseMount (DIESEL-FUSE), XfsFs (local
// XFS baseline) and LustreAdapter.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/metadata.h"  // DirEntry
#include "sim/clock.h"

namespace diesel::fusefs {

struct PosixStat {
  uint64_t size = 0;
  bool is_dir = false;
};

class PosixLike {
 public:
  virtual ~PosixLike() = default;

  virtual Result<std::vector<core::DirEntry>> ReadDir(
      sim::VirtualClock& clock, const std::string& path) = 0;

  /// `need_size` distinguishes `ls -R` (names only) from `ls -lR`
  /// (name + size), which on Lustre requires extra OSS RPCs.
  virtual Result<PosixStat> Stat(sim::VirtualClock& clock,
                                 const std::string& path, bool need_size) = 0;
};

struct WalkStats {
  size_t dirs_visited = 0;
  size_t entries_listed = 0;
  size_t stats_issued = 0;
};

/// Recursive directory walk: readdir every directory and stat every file
/// (`ls` aliases to `ls --color=auto` on the paper's CentOS, which lstats
/// each entry even without -l). `with_size` selects the size-accurate stat
/// (`ls -lR`), which on Lustre adds OSS glimpse RPCs. Single-threaded like
/// the command-line tools in §6.3.
Result<WalkStats> LsRecursive(PosixLike& fs, sim::VirtualClock& clock,
                              const std::string& root, bool with_size);

}  // namespace diesel::fusefs
