// Adapts the simulated Lustre client to the PosixLike walker interface
// (Fig. 10c baseline).
#pragma once

#include "fusefs/posix_like.h"
#include "lustre/lustre.h"

namespace diesel::fusefs {

class LustreAdapter : public PosixLike {
 public:
  LustreAdapter(lustre::LustreFs& fs, sim::NodeId client)
      : fs_(fs), client_(client) {}

  Result<std::vector<core::DirEntry>> ReadDir(
      sim::VirtualClock& clock, const std::string& path) override {
    DIESEL_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            fs_.ReadDir(clock, client_, path));
    std::vector<core::DirEntry> out;
    out.reserve(names.size());
    for (std::string& name : names) {
      std::string full = (path == "/" ? "" : path) + "/" + name;
      // The type bit rides in the readdir page, so resolving it charges no
      // extra RPC (scratch clock inside IsDir).
      out.push_back({std::move(name), IsDir(clock, full)});
    }
    return out;
  }

  Result<PosixStat> Stat(sim::VirtualClock& clock, const std::string& path,
                         bool need_size) override {
    DIESEL_ASSIGN_OR_RETURN(lustre::LustreStat st,
                            fs_.Stat(clock, client_, path, need_size));
    return PosixStat{st.size, st.is_dir};
  }

 private:
  bool IsDir(sim::VirtualClock& clock, const std::string& full) {
    // Type bit rides in the readdir page — no extra RPC is charged.
    sim::VirtualClock scratch(clock.now());
    Result<lustre::LustreStat> st = fs_.Stat(scratch, client_, full, false);
    return st.ok() && st.value().is_dir;
  }

  lustre::LustreFs& fs_;
  sim::NodeId client_;
};

}  // namespace diesel::fusefs
