#include "fusefs/fusefs.h"

#include <cassert>

#include "shuffle/shuffle.h"
#include "sim/calibration.h"

namespace diesel::fusefs {

FuseMount::FuseMount(std::vector<core::DieselClient*> clients)
    : clients_(std::move(clients)) {
  assert(!clients_.empty());
}

core::DieselClient* FuseMount::PickClient() {
  size_t i = next_client_.fetch_add(1, std::memory_order_relaxed);
  return clients_[i % clients_.size()];
}

void FuseMount::Crossing(sim::VirtualClock& clock) {
  clock.Advance(sim::kFuseCrossingCost);
  requests_.fetch_add(1, std::memory_order_relaxed);
  crossings_ns_.fetch_add(sim::kFuseCrossingCost, std::memory_order_relaxed);
}

Result<Bytes> FuseMount::ReadFile(sim::VirtualClock& clock,
                                  const std::string& path) {
  core::DieselClient* client = PickClient();
  // open(2): lookup + open request through the daemon.
  Crossing(clock);
  client->clock().AdvanceTo(clock.now());
  Result<Bytes> content = client->Get(path);
  clock.AdvanceTo(client->clock().now());
  if (!content.ok()) return content;

  // The kernel issues read(2) requests in kFuseMaxRead slices; the first
  // slice rode along with the fetch above, the rest each pay a crossing.
  uint64_t size = content.value().size();
  uint64_t slices = size == 0 ? 1 : (size + sim::kFuseMaxRead - 1) / sim::kFuseMaxRead;
  for (uint64_t i = 1; i < slices; ++i) Crossing(clock);
  // close(2).
  Crossing(clock);
  bytes_read_.fetch_add(size, std::memory_order_relaxed);
  return content;
}

Status FuseMount::WriteFile(sim::VirtualClock& clock, const std::string& path,
                            BytesView content) {
  core::DieselClient* client = PickClient();
  // create(2).
  Crossing(clock);
  client->clock().AdvanceTo(clock.now());
  Status st = client->Put(path, content);
  clock.AdvanceTo(client->clock().now());
  if (!st.ok()) return st;
  // write(2) slices beyond the first, then close(2).
  uint64_t slices = content.empty()
                        ? 1
                        : (content.size() + sim::kFuseMaxRead - 1) /
                              sim::kFuseMaxRead;
  for (uint64_t i = 1; i < slices; ++i) Crossing(clock);
  Crossing(clock);
  return Status::Ok();
}

Status FuseMount::Flush(sim::VirtualClock& clock) {
  for (core::DieselClient* client : clients_) {
    Crossing(clock);
    client->clock().AdvanceTo(clock.now());
    DIESEL_RETURN_IF_ERROR(client->Flush());
    clock.AdvanceTo(client->clock().now());
  }
  return Status::Ok();
}

Result<std::string> FuseMount::ReadShuffleList(sim::VirtualClock& clock,
                                               size_t group_size,
                                               uint64_t epoch_seed) {
  core::DieselClient* client = PickClient();
  Crossing(clock);
  if (client->snapshot() == nullptr)
    return Status::FailedPrecondition(
        "shuffle list needs a loaded metadata snapshot (DL_load_meta)");
  const core::MetadataSnapshot& snap = *client->snapshot();
  Rng rng(epoch_seed);
  shuffle::ShufflePlan plan =
      shuffle::ChunkWiseShuffle(snap, {.group_size = group_size}, rng);
  std::string out;
  out.reserve(plan.file_order.size() * 48);
  for (uint32_t idx : plan.file_order) {
    out += snap.files()[idx].full_name;
    out += '\n';
  }
  // List generation is client-local CPU work plus streaming it back through
  // the FUSE pipe in kFuseMaxRead slices.
  clock.Advance(sim::kSnapshotLookupCost * plan.file_order.size() / 4);
  uint64_t slices = (out.size() + sim::kFuseMaxRead - 1) / sim::kFuseMaxRead;
  for (uint64_t i = 1; i < slices; ++i) Crossing(clock);
  return out;
}

Result<std::vector<core::DirEntry>> FuseMount::ReadDir(
    sim::VirtualClock& clock, const std::string& path) {
  core::DieselClient* client = PickClient();
  Crossing(clock);
  client->clock().AdvanceTo(clock.now());
  Result<std::vector<core::DirEntry>> entries = client->List(path);
  clock.AdvanceTo(client->clock().now());
  return entries;
}

Result<PosixStat> FuseMount::Stat(sim::VirtualClock& clock,
                                  const std::string& path, bool need_size) {
  (void)need_size;  // snapshot lookups return size at no extra cost
  core::DieselClient* client = PickClient();
  Crossing(clock);
  client->clock().AdvanceTo(clock.now());
  Result<core::FileMeta> meta = client->Stat(path);
  clock.AdvanceTo(client->clock().now());
  if (meta.ok()) return PosixStat{meta.value().length, false};
  // Not a file: maybe a directory known to the snapshot.
  if (meta.status().IsNotFound() && client->snapshot() != nullptr &&
      client->snapshot()->HasDir(path)) {
    return PosixStat{0, true};
  }
  return meta.status();
}

}  // namespace diesel::fusefs
