// Simulated Lustre baseline (shared POSIX distributed filesystem, §2.2).
//
// Models the cost structure the paper measures against, not Lustre's
// internals: a central MDS whose service capacity caps metadata ops
// (~68k QPS, Fig. 10b text), OSS data servers with a random-small-read
// penalty, per-open client lock/layout overhead, and the size-on-OSS stat
// pathology (`ls -lR` needs extra OSS RPCs per file, Fig. 10c).
//
// File payloads are optional: CreateSized() registers metadata only and
// reads return zero bytes of content but charge full time — benchmarks use
// it so hundreds of thousands of synthetic files need no backing memory.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/fabric.h"
#include "sim/clock.h"
#include "sim/device.h"

namespace diesel::lustre {

struct LustreStat {
  uint64_t size = 0;
  Nanos mtime = 0;
  bool is_dir = false;
};

struct LustreOptions {
  sim::NodeId mds_node = 0;
  sim::NodeId oss_node = 0;
};

class LustreFs {
 public:
  LustreFs(net::Fabric& fabric, LustreOptions options);

  /// Create a file with real content.
  Status Create(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& path, BytesView content);

  /// Create metadata-only (content reads back as zeros of `size` bytes).
  Status CreateSized(sim::VirtualClock& clock, sim::NodeId client,
                     const std::string& path, uint64_t size);

  /// Full-file read (open + data transfer + close).
  Result<Bytes> Read(sim::VirtualClock& clock, sim::NodeId client,
                     const std::string& path);

  /// stat(2). `need_size` adds the MDS->OSS glimpse RPCs (ls -lR cost).
  Result<LustreStat> Stat(sim::VirtualClock& clock, sim::NodeId client,
                          const std::string& path, bool need_size);

  /// readdir(3): child names (files and directories) of `path`.
  Result<std::vector<std::string>> ReadDir(sim::VirtualClock& clock,
                                           sim::NodeId client,
                                           const std::string& path);

  Status Unlink(sim::VirtualClock& clock, sim::NodeId client,
                const std::string& path);

  bool Exists(const std::string& path) const;
  size_t NumFiles() const;

  sim::Device& mds() { return mds_; }
  sim::Device& oss() { return oss_; }

 private:
  struct FileEntry {
    uint64_t size = 0;
    Nanos mtime = 0;
    std::optional<Bytes> content;  // nullopt => sized-only
  };

  static std::string ParentOf(const std::string& path);
  static std::string NameOf(const std::string& path);
  /// Register all ancestor directories of `path`.
  void AddDirsLocked(const std::string& path);

  net::Fabric& fabric_;
  LustreOptions options_;
  sim::Device mds_;
  sim::Device oss_;

  mutable std::mutex mutex_;
  std::map<std::string, FileEntry> files_;
  std::map<std::string, std::set<std::string>> dirs_;  // dir -> child names
  uint32_t statahead_seq_ = 0;  // batches size-less stats (statahead model)
};

}  // namespace diesel::lustre
