#include "lustre/lustre.h"

#include <cassert>

#include "sim/calibration.h"

namespace diesel::lustre {
namespace {

constexpr uint64_t kMetaRpcBytes = 192;  // intent + layout + lock payloads

}  // namespace

LustreFs::LustreFs(net::Fabric& fabric, LustreOptions options)
    : fabric_(fabric), options_(options),
      mds_(sim::LustreMdsSpec()), oss_(sim::LustreOssSpec()) {}

std::string LustreFs::ParentOf(const std::string& path) {
  size_t pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

std::string LustreFs::NameOf(const std::string& path) {
  size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

void LustreFs::AddDirsLocked(const std::string& path) {
  std::string parent = ParentOf(path);
  std::string child = NameOf(path);
  for (;;) {
    bool inserted = dirs_[parent].insert(child).second;
    if (!inserted || parent == "/") break;
    child = NameOf(parent);
    parent = ParentOf(parent);
  }
}

Status LustreFs::Create(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& path, BytesView content) {
  // MDS transaction (create + layout) then OSS object write.
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.mds_node, kMetaRpcBytes, kMetaRpcBytes,
      [&](Nanos arrival) {
        return mds_.Serve(arrival, 0, sim::kLustreCreateCost);
      }));
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.oss_node, content.size() + kMetaRpcBytes,
      kMetaRpcBytes, [&](Nanos arrival) {
        return oss_.Serve(arrival, content.size(), sim::kLustreOssWriteExtra);
      }));
  std::lock_guard<std::mutex> lock(mutex_);
  FileEntry& e = files_[path];
  e.size = content.size();
  e.mtime = clock.now();
  e.content = Bytes(content.begin(), content.end());
  AddDirsLocked(path);
  return Status::Ok();
}

Status LustreFs::CreateSized(sim::VirtualClock& clock, sim::NodeId client,
                             const std::string& path, uint64_t size) {
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.mds_node, kMetaRpcBytes, kMetaRpcBytes,
      [&](Nanos arrival) {
        return mds_.Serve(arrival, 0, sim::kLustreCreateCost);
      }));
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.oss_node, size + kMetaRpcBytes, kMetaRpcBytes,
      [&](Nanos arrival) {
        return oss_.Serve(arrival, size, sim::kLustreOssWriteExtra);
      }));
  std::lock_guard<std::mutex> lock(mutex_);
  FileEntry& e = files_[path];
  e.size = size;
  e.mtime = clock.now();
  e.content.reset();
  AddDirsLocked(path);
  return Status::Ok();
}

Result<Bytes> LustreFs::Read(sim::VirtualClock& clock, sim::NodeId client,
                             const std::string& path) {
  uint64_t size = 0;
  std::optional<Bytes> content;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    size = it->second.size;
    content = it->second.content;  // copy under lock; files are immutable
  }
  // open(2): MDS intent lock + layout, plus client-side lock setup.
  clock.Advance(sim::kLustreClientOpenCost);
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.mds_node, kMetaRpcBytes, kMetaRpcBytes,
      [&](Nanos arrival) { return mds_.Serve(arrival, 0); }));
  // Data path: OSS read of the full file.
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.oss_node, kMetaRpcBytes, size + kMetaRpcBytes,
      [&](Nanos arrival) { return oss_.Serve(arrival, size); }));
  if (content) return std::move(*content);
  return Bytes(size, 0);  // sized-only file: zero content, full-cost timing
}

Result<LustreStat> LustreFs::Stat(sim::VirtualClock& clock, sim::NodeId client,
                                  const std::string& path, bool need_size) {
  LustreStat st;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(path);
    if (it != files_.end()) {
      st.size = it->second.size;
      st.mtime = it->second.mtime;
      found = true;
    } else if (dirs_.count(path) > 0 || path == "/") {
      st.is_dir = true;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no such path: " + path);
  if (!need_size || st.is_dir) {
    // Statahead: during scans, attributes arrive prefetched in batches; one
    // full MDS round trip amortizes over kLustreStataheadBatch local stats.
    uint32_t seq;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seq = statahead_seq_++;
    }
    if (seq % sim::kLustreStataheadBatch != 0) {
      clock.Advance(sim::kLustreStataheadCost);
      return st;
    }
    DIESEL_RETURN_IF_ERROR(fabric_.Call(
        clock, client, options_.mds_node, kMetaRpcBytes, kMetaRpcBytes,
        [&](Nanos arrival) { return mds_.Serve(arrival, 0); }));
    return st;
  }
  // Size-accurate stat: attributes live on the MDS but the size lives on the
  // OSS objects, so extra glimpse RPCs are paid (the ls -lR pathology) and
  // statahead cannot help.
  DIESEL_RETURN_IF_ERROR(fabric_.Call(
      clock, client, options_.mds_node, kMetaRpcBytes, kMetaRpcBytes,
      [&](Nanos arrival) {
        return mds_.Serve(arrival, 0, sim::kLustreOssStatExtra);
      }));
  return st;
}

Result<std::vector<std::string>> LustreFs::ReadDir(sim::VirtualClock& clock,
                                                   sim::NodeId client,
                                                   const std::string& path) {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = dirs_.find(path);
    if (it == dirs_.end()) {
      if (path != "/") return Status::NotFound("no such dir: " + path);
    } else {
      names.assign(it->second.begin(), it->second.end());
    }
  }
  // readdir pages through the MDS; one RPC per page of entries.
  constexpr size_t kEntriesPerPage = 1024;
  size_t pages = names.size() / kEntriesPerPage + 1;
  uint64_t resp_bytes = 0;
  for (const auto& n : names) resp_bytes += n.size() + 32;
  for (size_t p = 0; p < pages; ++p) {
    DIESEL_RETURN_IF_ERROR(fabric_.Call(
        clock, client, options_.mds_node, kMetaRpcBytes,
        resp_bytes / pages + kMetaRpcBytes, [&](Nanos arrival) {
          return mds_.Serve(arrival, resp_bytes / pages);
        }));
  }
  return names;
}

Status LustreFs::Unlink(sim::VirtualClock& clock, sim::NodeId client,
                        const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    files_.erase(it);
    auto dit = dirs_.find(ParentOf(path));
    if (dit != dirs_.end()) dit->second.erase(NameOf(path));
  }
  return fabric_.Call(clock, client, options_.mds_node, kMetaRpcBytes,
                      kMetaRpcBytes, [&](Nanos arrival) {
                        return mds_.Serve(arrival, 0, sim::kLustreCreateCost);
                      });
}

bool LustreFs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

size_t LustreFs::NumFiles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

}  // namespace diesel::lustre
