// Always-on flight recorder: a bounded ring of recent trace spans plus
// fault / breaker / membership / migration events, kept cheaply at all times
// so that when a chaos test fails, a circuit breaker opens, or a node
// crashes, the last moments before the incident can be dumped and inspected
// — the black box for a simulation that normally only exports end-of-run
// aggregates.
//
// Events are recorded unconditionally by the fabric, cache, and membership
// layers (they are rare: faults, breaker transitions, membership changes),
// so no tracer needs to be attached for the recorder to have evidence.
// Completed spans are mirrored in only when a Tracer has the recorder
// attached via Tracer::set_flight_recorder.
//
// All timestamps are virtual, so for a fixed seed the dump is byte-stable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace diesel::obs {

struct Span;

enum class FlightEventKind : uint8_t {
  kFault,       // injected drop / flap / latency spike / corruption
  kBreaker,     // circuit breaker open / recover
  kMembership,  // join / drain / crash / recover transitions
  kMigration,   // chunk ownership movement
  kChaos,       // chaos-test lifecycle markers (failure dumps)
  kInfo,        // anything else worth keeping
};

const char* ToString(FlightEventKind kind);

struct FlightEvent {
  uint64_t seq = 0;  // monotonically increasing record number
  Nanos at = 0;      // virtual time of the event
  FlightEventKind kind = FlightEventKind::kInfo;
  std::string what;
  uint64_t span = 0;  // optional owning span id (0 = none)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t event_capacity = 1024,
                          size_t span_capacity = 256);

  /// The process-wide recorder every subsystem records into.
  static FlightRecorder& Default();

  void Record(FlightEventKind kind, Nanos at, std::string what,
              uint64_t span = 0);
  /// Mirror a completed span into the span ring (fed by Tracer when
  /// attached via Tracer::set_flight_recorder).
  void RecordSpan(const Span& span);

  /// Arm auto-dump: when an event of one of `kinds` is recorded, the ring is
  /// dumped to `path` (best-effort; failures are ignored — the recorder must
  /// never take down the workload it is observing). An empty path disarms.
  void ArmAutoDump(std::string path,
                   std::initializer_list<FlightEventKind> kinds);

  /// Retained events/spans, oldest first.
  std::vector<FlightEvent> events() const;
  uint64_t events_recorded() const;
  uint64_t spans_recorded() const;

  /// Drop everything (fresh run); auto-dump arming survives.
  void Clear();

  /// Byte-stable `diesel.flightrec/v1` dump of both rings.
  std::string Json() const;
  Status DumpToFile(const std::string& path) const;

 private:
  std::string JsonLocked() const;

  mutable std::mutex mutex_;
  size_t event_capacity_;
  size_t span_capacity_;
  uint64_t event_seq_ = 0;
  uint64_t span_seq_ = 0;
  std::vector<FlightEvent> events_;  // ring, oldest first
  // Completed spans, flattened (the full Span type lives in trace.h; the
  // recorder keeps its own compact copy to avoid a circular dependency).
  struct SpanRecord {
    uint64_t seq = 0;
    uint64_t id = 0;
    uint64_t parent = 0;
    std::string name;
    uint32_t node = 0;
    Nanos start = 0;
    Nanos end = 0;
    size_t notes = 0;
  };
  std::vector<SpanRecord> spans_;  // ring, oldest first
  std::string auto_dump_path_;
  uint8_t auto_dump_mask_ = 0;
};

/// Shorthand for the process-wide recorder.
inline FlightRecorder& Flight() { return FlightRecorder::Default(); }

}  // namespace diesel::obs
