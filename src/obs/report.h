// Perf-trajectory report schema.
//
// Every bench target emits one `BenchReport` — the machine-readable record
// of a deterministic virtual-time run: the metrics the bench asserts about
// (direction-aware, so the diff engine knows whether bigger is better), the
// parameters that shaped the run, a per-epoch stall-attribution timeline
// (Fig. 15 decomposition), and the final metrics-registry snapshot. A suite
// run merges the per-bench files into one `SuiteReport`
// (`BENCH_RESULTS.json`), which `dlcmd perf diff` compares against the
// committed `bench/baseline.json`.
//
// Because the simulator is virtual-time and seeded, every value here is
// bit-stable across runs and machines, and serialization is byte-stable:
// the same report always dumps to the same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/units.h"

namespace diesel::obs {

/// Which way "better" points for a metric. The diff engine gates on this:
/// a throughput drop is a regression, a latency drop an improvement, and
/// `kInfo` metrics (wall-clock timings, raw counts) never gate.
enum class Direction { kHigherIsBetter, kLowerIsBetter, kInfo };

const char* DirectionName(Direction d);

struct BenchMetric {
  std::string name;
  std::string unit;
  double value = 0.0;
  Direction direction = Direction::kInfo;
  /// Allowed relative drift before a change gates. Virtual-time results are
  /// bit-stable, so the default is tight; widen per-metric for results that
  /// depend on e.g. floating-point reduction order.
  double tolerance = 0.01;
};

/// One epoch's virtual time, charged exhaustively to phases:
/// fetch (data wait), shuffle (plan/ordering), train (compute), other
/// (snapshot, bookkeeping). Invariant: the four sum to the epoch's
/// virtual duration.
struct EpochPhases {
  std::string label;  // arm name, e.g. "diesel" / "lustre"
  int64_t epoch = 0;
  int64_t fetch_ns = 0;
  int64_t shuffle_ns = 0;
  int64_t train_ns = 0;
  int64_t other_ns = 0;

  int64_t TotalNs() const { return fetch_ns + shuffle_ns + train_ns + other_ns; }
};

struct BenchReport {
  static constexpr const char* kSchema = "diesel.bench.report/v1";

  std::string bench;
  uint64_t seed = 0;
  /// Virtual nanoseconds the bench's simulated runs covered (sum across
  /// sub-scenarios; informational).
  uint64_t virtual_ns = 0;
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<BenchMetric> metrics;
  std::vector<EpochPhases> epochs;
  /// Final metrics-registry snapshot (the `<bench>.metrics.json` document),
  /// embedded so one artifact carries everything. Null when stripped.
  JsonValue registry;

  JsonValue ToJson() const;
  std::string Json() const { return ToJson().Dump(); }
  static Result<BenchReport> FromJson(const JsonValue& doc);
  static Result<BenchReport> Parse(std::string_view text);

  const BenchMetric* FindMetric(std::string_view name) const;
};

struct SuiteReport {
  static constexpr const char* kSchema = "diesel.bench.suite/v1";

  std::vector<BenchReport> benches;

  /// Add one bench's report, keeping the suite sorted by bench name so the
  /// merged document is independent of collection order. A bench already
  /// present is replaced.
  void Merge(BenchReport report);

  const BenchReport* FindBench(std::string_view name) const;

  JsonValue ToJson() const;
  std::string Json() const { return ToJson().Dump(); }
  static Result<SuiteReport> FromJson(const JsonValue& doc);
  static Result<SuiteReport> Parse(std::string_view text);
};

}  // namespace diesel::obs
