#include "obs/cluster_view.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace diesel::obs {
namespace {

constexpr const char* kDeviceBusyPrefix = "sim.device.busy_ns{";
constexpr const char* kLinkBusyPrefix = "net.link.busy_ns{";

/// Re-key "sim.device.busy_ns{...}" to a sibling series with the same label
/// block ("sim.device.ops{...}").
std::string Sibling(const std::string& key, const char* prefix,
                    const std::string& sibling_name) {
  return sibling_name + key.substr(std::string(prefix).size() - 1);
}

/// Natural sort for node labels: "n2" before "n10".
bool NodeLess(const std::string& a, const std::string& b) {
  if (a.size() > 1 && b.size() > 1 && a[0] == 'n' && b[0] == 'n') {
    char* ea = nullptr;
    char* eb = nullptr;
    long na = std::strtol(a.c_str() + 1, &ea, 10);
    long nb = std::strtol(b.c_str() + 1, &eb, 10);
    if (*ea == '\0' && *eb == '\0') return na < nb;
  }
  return a < b;
}

}  // namespace

ParsedKey ParseMetricKey(const std::string& key) {
  ParsedKey out;
  size_t brace = key.find('{');
  if (brace == std::string::npos) {
    out.name = key;
    return out;
  }
  out.name = key.substr(0, brace);
  size_t pos = brace + 1;
  size_t end = key.rfind('}');
  if (end == std::string::npos || end < pos) end = key.size();
  while (pos < end) {
    size_t comma = key.find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    size_t eq = key.find('=', pos);
    if (eq != std::string::npos && eq < comma) {
      out.labels.emplace(key.substr(pos, eq - pos),
                         key.substr(eq + 1, comma - eq - 1));
    }
    pos = comma + 1;
  }
  return out;
}

Nanos ClusterView::InferWindow(const MetricsSnapshot& snap) {
  double max_end = 0.0;
  double min_start = -1.0;
  for (const auto& [key, value] : snap.gauges) {
    if (key.rfind("sim.device.busy_end_ns", 0) == 0) {
      max_end = std::max(max_end, value);
    } else if (key.rfind("sim.device.busy_start_ns", 0) == 0) {
      if (min_start < 0.0 || value < min_start) min_start = value;
    }
  }
  if (min_start < 0.0) min_start = 0.0;
  if (max_end <= min_start) return 0;
  return static_cast<Nanos>(max_end - min_start);
}

ClusterView ClusterView::Compute(const MetricsSnapshot& current,
                                 const MetricsSnapshot* base,
                                 Nanos window_ns) {
  MetricsSnapshot delta = base ? current.DeltaSince(*base) : current;
  if (window_ns == 0) window_ns = InferWindow(current);

  std::map<std::string, double> counters;
  for (const auto& [k, v] : delta.counters) {
    counters[k] = static_cast<double>(v);
  }
  std::map<std::string, double> gauges = current.gauges;  // absolute values
  std::map<std::string, HistoStat> histos;
  for (const auto& [k, h] : delta.histograms) {
    histos[k] = {static_cast<double>(h.count()), h.Mean()};
  }
  return Build(counters, gauges, histos, window_ns);
}

Result<ClusterView> ClusterView::FromRegistryJson(const JsonValue& registry,
                                                  Nanos window_ns) {
  if (!registry.is_object()) {
    return Status::InvalidArgument("registry JSON is not an object");
  }
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistoStat> histos;
  if (const JsonValue* c = registry.Find("counters"); c && c->is_object()) {
    for (const auto& [key, value] : c->object()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("counter '" + key + "' is not numeric");
      }
      counters[key] = value.number_value();
    }
  }
  if (const JsonValue* g = registry.Find("gauges"); g && g->is_object()) {
    for (const auto& [key, value] : g->object()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("gauge '" + key + "' is not numeric");
      }
      gauges[key] = value.number_value();
    }
  }
  if (const JsonValue* h = registry.Find("histograms"); h && h->is_object()) {
    for (const auto& [key, value] : h->object()) {
      if (!value.is_object()) {
        return Status::InvalidArgument("histogram '" + key +
                                       "' is not a summary object");
      }
      histos[key] = {value.GetNumber("count", 0.0),
                     value.GetNumber("mean", 0.0)};
    }
  }
  if (window_ns == 0) {
    double max_end = 0.0;
    double min_start = -1.0;
    for (const auto& [key, value] : gauges) {
      if (key.rfind("sim.device.busy_end_ns", 0) == 0) {
        max_end = std::max(max_end, value);
      } else if (key.rfind("sim.device.busy_start_ns", 0) == 0) {
        if (min_start < 0.0 || value < min_start) min_start = value;
      }
    }
    if (min_start < 0.0) min_start = 0.0;
    if (max_end > min_start) {
      window_ns = static_cast<Nanos>(max_end - min_start);
    }
  }
  return Build(counters, gauges, histos, window_ns);
}

ClusterView ClusterView::Build(const std::map<std::string, double>& counters,
                               const std::map<std::string, double>& gauges,
                               const std::map<std::string, HistoStat>& histos,
                               Nanos window_ns) {
  ClusterView view;
  view.window_ns_ = window_ns;
  const double window = static_cast<double>(window_ns);

  auto gauge_or = [&](const std::string& key, double fallback) {
    auto it = gauges.find(key);
    return it == gauges.end() ? fallback : it->second;
  };
  auto counter_or = [&](const std::string& key, double fallback) {
    auto it = counters.find(key);
    return it == counters.end() ? fallback : it->second;
  };
  auto histo_or = [&](const std::string& key) {
    auto it = histos.find(key);
    return it == histos.end() ? HistoStat{} : it->second;
  };

  for (const auto& [key, busy] : counters) {
    const bool is_device = key.rfind(kDeviceBusyPrefix, 0) == 0;
    const bool is_link = !is_device && key.rfind(kLinkBusyPrefix, 0) == 0;
    if (!is_device && !is_link) continue;
    ParsedKey parsed = ParseMetricKey(key);
    const char* prefix = is_device ? kDeviceBusyPrefix : kLinkBusyPrefix;

    ResourceUtil r;
    r.kind = is_device ? "device" : "link";
    auto name_it = parsed.labels.find(is_device ? "device" : "link");
    r.name = name_it == parsed.labels.end() ? "?" : name_it->second;
    auto node_it = parsed.labels.find("node");
    if (node_it != parsed.labels.end()) r.node = node_it->second;
    r.busy_ns = busy;
    r.channels = std::max(
        1.0, gauge_or(Sibling(key, prefix,
                              is_device ? "sim.device.channels"
                                        : "net.link.channels"),
                      1.0));
    HistoStat qw = histo_or(Sibling(
        key, prefix,
        is_device ? "sim.device.queue_wait_ns" : "net.link.queue_wait_ns"));
    r.mean_queue_wait_ns = qw.mean;
    if (is_device) {
      r.ops = counter_or(Sibling(key, prefix, "sim.device.ops"), 0.0);
      r.mean_service_ns =
          histo_or(Sibling(key, prefix, "sim.device.service_ns")).mean;
    } else {
      r.ops = qw.count;  // one queue-wait observation per exchange
      r.mean_service_ns = r.ops > 0.0 ? busy / r.ops : 0.0;
    }
    if (window > 0.0) r.raw_util = busy / (r.channels * window);
    r.util = std::clamp(r.raw_util, 0.0, 1.0);
    view.resources_.push_back(std::move(r));
  }

  std::stable_sort(view.resources_.begin(), view.resources_.end(),
                   [](const ResourceUtil& a, const ResourceUtil& b) {
                     return a.util > b.util;
                   });

  // resources_ is sorted busiest-first, so the first resource seen for a
  // node is its bottleneck.
  std::map<std::string, NodeUtil> by_node;
  for (const ResourceUtil& r : view.resources_) {
    if (r.node.empty()) continue;
    NodeUtil& n = by_node[r.node];
    n.node = r.node;
    n.sum_busy_ns += r.busy_ns;
    ++n.resources;
    if (n.resources == 1) {
      n.util = r.util;
      n.max_resource = r.name;
    }
  }
  for (auto& [node, n] : by_node) view.nodes_.push_back(n);
  std::sort(view.nodes_.begin(), view.nodes_.end(),
            [](const NodeUtil& a, const NodeUtil& b) {
              return NodeLess(a.node, b.node);
            });

  if (!view.nodes_.empty()) {
    std::vector<double> utils;
    utils.reserve(view.nodes_.size());
    double sum = 0.0;
    for (const NodeUtil& n : view.nodes_) {
      utils.push_back(n.util);
      sum += n.util;
      if (n.util >= view.imbalance_.max_util) {
        view.imbalance_.max_util = n.util;
        view.imbalance_.max_node = n.node;
      }
    }
    std::sort(utils.begin(), utils.end());
    const size_t m = utils.size();
    view.imbalance_.nodes = m;
    view.imbalance_.median_util =
        (m % 2 == 1) ? utils[m / 2] : (utils[m / 2 - 1] + utils[m / 2]) / 2.0;
    view.imbalance_.mean_util = sum / static_cast<double>(m);
    double var = 0.0;
    for (double u : utils) {
      double d = u - view.imbalance_.mean_util;
      var += d * d;
    }
    var /= static_cast<double>(m);
    if (view.imbalance_.mean_util > 0.0) {
      view.imbalance_.cv = std::sqrt(var) / view.imbalance_.mean_util;
    }
    if (view.imbalance_.median_util > 0.0) {
      view.imbalance_.max_over_median =
          view.imbalance_.max_util / view.imbalance_.median_util;
    }
  }
  return view;
}

void ClusterView::ExportGauges() const {
  MetricsRegistry& reg = Metrics();
  for (const ResourceUtil& r : resources_) {
    Labels labels;
    labels.emplace_back(r.kind == "device" ? "device" : "link", r.name);
    if (!r.node.empty()) labels.emplace_back("node", r.node);
    reg.GetGauge(r.kind == "device" ? "sim.device.util" : "net.link.util",
                 labels)
        .Set(r.util);
  }
  for (const NodeUtil& n : nodes_) {
    reg.GetGauge("cluster.node.util", {{"node", n.node}}).Set(n.util);
  }
  reg.GetGauge("cluster.imbalance.max_util").Set(imbalance_.max_util);
  reg.GetGauge("cluster.imbalance.median_util").Set(imbalance_.median_util);
  reg.GetGauge("cluster.imbalance.mean_util").Set(imbalance_.mean_util);
  reg.GetGauge("cluster.imbalance.cv").Set(imbalance_.cv);
  reg.GetGauge("cluster.imbalance.max_over_median")
      .Set(imbalance_.max_over_median);
  reg.GetGauge("cluster.imbalance.nodes")
      .Set(static_cast<double>(imbalance_.nodes));
}

std::string ClusterView::Render(size_t top_n) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "window: %.3f ms over %zu resources, %zu nodes\n",
                static_cast<double>(window_ns_) / 1e6, resources_.size(),
                nodes_.size());
  out += line;
  std::snprintf(line, sizeof(line), "%-28s %-6s %-6s %7s %10s %12s %12s\n",
                "resource", "node", "kind", "util", "ops", "q-wait(us)",
                "service(us)");
  out += line;
  size_t shown = 0;
  for (const ResourceUtil& r : resources_) {
    if (top_n > 0 && shown >= top_n) break;
    std::snprintf(line, sizeof(line), "%-28s %-6s %-6s %6.1f%% %10.0f %12.1f %12.1f\n",
                  r.name.c_str(), r.node.c_str(), r.kind.c_str(),
                  r.util * 100.0, r.ops, r.mean_queue_wait_ns / 1e3,
                  r.mean_service_ns / 1e3);
    out += line;
    ++shown;
  }
  std::snprintf(line, sizeof(line),
                "imbalance: max %.1f%% on %s, median %.1f%%, "
                "max/median %.2f, cv %.2f\n",
                imbalance_.max_util * 100.0, imbalance_.max_node.c_str(),
                imbalance_.median_util * 100.0, imbalance_.max_over_median,
                imbalance_.cv);
  out += line;
  return out;
}

}  // namespace diesel::obs
