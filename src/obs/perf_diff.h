// Baseline/diff engine for the perf trajectory.
//
// Compares a current `SuiteReport` against a committed baseline, metric by
// metric, with direction-aware relative tolerances: for a
// higher-is-better metric only a drop beyond tolerance regresses; for a
// lower-is-better metric only a rise does; `info` metrics never gate.
// Emits a verdict table and drives `dlcmd perf diff`'s exit code.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/report.h"

namespace diesel::obs {

enum class Verdict {
  kOk,         // within tolerance
  kImproved,   // beyond tolerance in the good direction
  kRegressed,  // beyond tolerance in the bad direction
  kNew,        // metric/bench only in current
  kMissing,    // metric/bench only in baseline
};

const char* VerdictName(Verdict v);

struct MetricDiff {
  std::string bench;
  std::string metric;
  std::string unit;
  Direction direction = Direction::kInfo;
  double baseline = 0.0;
  double current = 0.0;
  /// Relative delta (current - baseline) / |baseline|; 0 when baseline == 0.
  double rel_delta = 0.0;
  double tolerance = 0.0;
  Verdict verdict = Verdict::kOk;
};

struct PerfDiffOptions {
  /// When >= 0, overrides every metric's own tolerance.
  double tolerance_override = -1.0;
  /// Metrics/benches present in the baseline but absent from the current
  /// run gate the diff (they usually mean a bench silently stopped
  /// reporting). `--allow-missing` relaxes this.
  bool fail_on_missing = true;
};

struct PerfDiffResult {
  std::vector<MetricDiff> rows;
  int regressed = 0;
  int improved = 0;
  int added = 0;
  int missing = 0;
  int unchanged = 0;
  bool fail_on_missing = true;

  bool ok() const {
    return regressed == 0 && (!fail_on_missing || missing == 0);
  }
  /// Fixed-width verdict table; only rows whose verdict != kOk by default.
  std::string Table(bool include_ok = false) const;
  /// One-line summary, e.g. "perf diff: 2 regressed, 1 improved, ...".
  std::string Summary() const;
};

PerfDiffResult DiffSuites(const SuiteReport& baseline, const SuiteReport& current,
                          const PerfDiffOptions& options = {});

/// `dlcmd perf` entry point (also called directly by tests):
///   perf diff <baseline.json> <current.json> [--tol X] [--allow-missing] [-v]
///   perf merge <dir> -o <out.json> [--strip-registry]
/// Returns the process exit code (0 = ok / within tolerance).
int PerfCommand(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

}  // namespace diesel::obs
