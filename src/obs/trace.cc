#include "obs/trace.h"

#include <algorithm>
#include <cassert>

#include "common/ambient.h"
#include "obs/flight_recorder.h"

namespace diesel::obs {
namespace {

// The open-span stack rides on the thread-ambient context (domain = the
// owning tracer, value = span id), so independent tracers never adopt each
// other's spans and ThreadPool::Submit propagates the stack into workers.
uint64_t CurrentFor(Tracer* tracer) { return Ambient::Top(tracer, kNoSpan); }

}  // namespace

uint64_t Tracer::Begin(std::string name, Nanos start, uint32_t node,
                       uint64_t parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = std::move(name);
  span.node = node;
  span.start = start;
  span.end = start;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::End(uint64_t id, Nanos end) {
  if (id == kNoSpan) return;
  Span completed;
  FlightRecorder* recorder = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id > spans_.size()) return;
    spans_[id - 1].end = end;
    if (flight_recorder_ != nullptr) {
      completed = spans_[id - 1];
      recorder = flight_recorder_;
    }
  }
  // Mirror outside the lock: the recorder has its own mutex.
  if (recorder != nullptr) recorder->RecordSpan(completed);
}

void Tracer::Note(uint64_t id, Nanos at, std::string text) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id <= spans_.size()) {
    spans_[id - 1].notes.push_back({at, std::move(text)});
  }
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

uint64_t Tracer::CurrentSpanId() { return CurrentFor(this); }

bool Tracer::Find(uint64_t id, Span* out) const {
  if (id == kNoSpan) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > spans_.size()) return false;
  *out = spans_[id - 1];
  return true;
}

void Tracer::set_flight_recorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  flight_recorder_ = recorder;
}

namespace {

/// Shared forest printer for TextDump/TreeDump: children ordered by
/// (start, id), two-space indent per depth, annotations inline.
std::string DumpForest(const std::vector<Span>& all,
                       std::vector<size_t> roots) {
  std::vector<std::vector<size_t>> children(all.size() + 1);
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].parent != kNoSpan && all[i].parent <= all.size()) {
      children[all[i].parent].push_back(i);
    }
  }
  auto by_time = [&](size_t a, size_t b) {
    if (all[a].start != all[b].start) return all[a].start < all[b].start;
    return all[a].id < all[b].id;
  };
  std::sort(roots.begin(), roots.end(), by_time);
  for (auto& c : children) std::sort(c.begin(), c.end(), by_time);

  std::string out;
  // Iterative DFS so deep RPC chains cannot exhaust the stack.
  std::vector<std::pair<size_t, size_t>> stack;  // (span index, depth)
  for (auto r = roots.rbegin(); r != roots.rend(); ++r) stack.push_back({*r, 0});
  while (!stack.empty()) {
    auto [i, depth] = stack.back();
    stack.pop_back();
    const Span& s = all[i];
    std::string indent(depth * 2, ' ');
    out += indent + "[" + std::to_string(s.start) + ".." +
           std::to_string(s.end) + "ns] " + s.name;
    if (s.node != kNoNode) out += " @n" + std::to_string(s.node);
    out += "\n";
    for (const SpanNote& n : s.notes) {
      out += indent + "  ! at=" + std::to_string(n.at) + "ns " + n.text + "\n";
    }
    const auto& kids = children[s.id];
    for (auto k = kids.rbegin(); k != kids.rend(); ++k) {
      stack.push_back({*k, depth + 1});
    }
  }
  return out;
}

}  // namespace

std::string Tracer::TextDump() const {
  std::vector<Span> all = spans();
  std::vector<size_t> roots;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].parent == kNoSpan || all[i].parent > all.size()) {
      roots.push_back(i);
    }
  }
  return DumpForest(all, std::move(roots));
}

std::string Tracer::TreeDump(uint64_t id) const {
  std::vector<Span> all = spans();
  if (id == kNoSpan || id > all.size()) return "";
  // Walk up to the root; parent ids are always smaller than the child's, so
  // the walk terminates even if a stale parent id were recorded.
  size_t i = id - 1;
  while (all[i].parent != kNoSpan && all[i].parent <= all.size() &&
         all[i].parent < all[i].id) {
    i = all[i].parent - 1;
  }
  return DumpForest(all, {i});
}

std::string Tracer::JsonDump() const {
  std::vector<Span> all = spans();
  std::string out = "[";
  for (size_t i = 0; i < all.size(); ++i) {
    const Span& s = all[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           s.name + "\", \"node\": " +
           (s.node == kNoNode ? std::string("-1") : std::to_string(s.node)) +
           ", \"start\": " + std::to_string(s.start) +
           ", \"end\": " + std::to_string(s.end) + ", \"notes\": [";
    for (size_t n = 0; n < s.notes.size(); ++n) {
      if (n > 0) out += ", ";
      out += "{\"at\": " + std::to_string(s.notes[n].at) + ", \"text\": \"" +
             s.notes[n].text + "\"}";
    }
    out += "]}";
  }
  out += "\n]";
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name,
                       sim::VirtualClock& clock, uint32_t node)
    : tracer_(tracer), clock_(&clock) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->Begin(std::move(name), clock.now(), node, CurrentFor(tracer_));
  Ambient::Push(tracer_, id_);
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  tracer_->End(id_, clock_->now());
  // Spans close LIFO per thread; Pop tolerates (skips over) a mismatch
  // rather than corrupting the stack.
  Ambient::Pop(tracer_, id_);
}

void ScopedSpan::Note(std::string text) {
  if (tracer_ != nullptr) tracer_->Note(id_, clock_->now(), std::move(text));
}

void ScopedSpan::NoteAt(Nanos at, std::string text) {
  if (tracer_ != nullptr) tracer_->Note(id_, at, std::move(text));
}

void ScopedSpan::NoteCurrent(Tracer* tracer, Nanos at, std::string text) {
  if (tracer == nullptr) return;
  uint64_t id = CurrentFor(tracer);
  if (id != kNoSpan) tracer->Note(id, at, std::move(text));
}

}  // namespace diesel::obs
