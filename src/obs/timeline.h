// Time-resolved metrics: a Timeline samples the process-wide MetricsRegistry
// into a ring of fixed-width virtual-time buckets, each holding the interval
// delta (counters subtracted, histograms bucket-wise) since the previous
// sample. Chaos / churn / rescale runs export the ring as a byte-stable
// `diesel.timeline/v1` JSON next to the bench report, so degradation and
// recovery show up as curves instead of one end-of-run number.
//
// There are no background threads — virtual time only moves when the
// workload advances a clock, so the workload drives sampling explicitly:
// call AdvanceTo(now) from the driver loop (cheap no-op until a bucket
// boundary is crossed) and Finish(now) at the end of the run. One registry
// snapshot is taken per boundary-crossing call; when a single call crosses
// several boundaries the whole delta is charged to the first crossed bucket
// (the later ones saw no sampling opportunity and export empty).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace diesel::obs {

class Timeline {
 public:
  struct Options {
    Nanos bucket_ns = 1'000'000;  // 1 virtual ms per bucket
    size_t capacity = 4096;       // oldest buckets evicted beyond this
  };

  Timeline() : Timeline(Options()) {}
  explicit Timeline(Options options);

  /// Begin sampling: snapshots the registry as the base state and opens the
  /// first bucket at `at`. Calling Start again rewinds to a fresh run.
  void Start(Nanos at);

  /// Close every bucket whose window has fully passed `now`. No-op before
  /// Start or until a boundary is crossed, so it is safe (and intended) to
  /// call once per operation in the driver loop.
  void AdvanceTo(Nanos now);

  /// Close the trailing partial bucket at end of run (no-op if empty).
  void Finish(Nanos now);

  /// Attach a labeled marker (membership change, fault window edge, breaker
  /// event) so exported curves can be aligned with causes.
  void Note(Nanos at, std::string text);

  bool started() const { return started_; }
  size_t buckets() const { return ring_.size(); }
  uint64_t dropped() const { return dropped_; }
  Nanos bucket_ns() const { return options_.bucket_ns; }

  /// Byte-stable JSON for one timeline section:
  /// {"label":..,"bucket_ns":..,"start":..,"dropped":..,
  ///  "buckets":[{"t":..,"counters":{..},"gauges":{..},"histograms":{..}}],
  ///  "notes":[{"at":..,"text":..}]}
  /// Only non-zero counter/gauge deltas and non-empty histogram deltas are
  /// emitted per bucket.
  std::string SectionJson(const std::string& label) const;

 private:
  struct Bucket {
    Nanos start = 0;
    Nanos end = 0;
    MetricsSnapshot delta;
  };

  Options options_;
  bool started_ = false;
  Nanos section_start_ = 0;
  Nanos cursor_ = 0;  // start of the currently open bucket
  MetricsSnapshot last_;
  std::vector<Bucket> ring_;  // oldest first
  uint64_t dropped_ = 0;
  std::vector<std::pair<Nanos, std::string>> notes_;
};

/// Assemble a full `diesel.timeline/v1` document from labeled sections
/// (each produced by Timeline::SectionJson).
std::string TimelineDocumentJson(const std::string& bench,
                                 const std::vector<std::string>& sections);

}  // namespace diesel::obs
