#include "obs/perf_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace diesel::obs {
namespace {

double EffectiveTolerance(const BenchMetric& m, const PerfDiffOptions& opt) {
  return opt.tolerance_override >= 0.0 ? opt.tolerance_override : m.tolerance;
}

Verdict Judge(Direction dir, double rel_delta, double tolerance) {
  if (dir == Direction::kInfo) return Verdict::kOk;
  if (std::fabs(rel_delta) <= tolerance) return Verdict::kOk;
  bool went_up = rel_delta > 0.0;
  bool up_is_good = dir == Direction::kHigherIsBetter;
  return went_up == up_is_good ? Verdict::kImproved : Verdict::kRegressed;
}

std::string FmtValue(double v) {
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string FmtPct(double rel) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel * 100.0);
  return buf;
}

Result<SuiteReport> LoadSuite(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return SuiteReport::Parse(buf.str());
}

int RunDiff(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> paths;
  PerfDiffOptions options;
  bool verbose = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--tol") {
      if (i + 1 >= args.size()) {
        err << "perf diff: --tol needs a value\n";
        return 2;
      }
      options.tolerance_override = std::stod(args[++i]);
    } else if (a == "--allow-missing") {
      options.fail_on_missing = false;
    } else if (a == "-v" || a == "--verbose") {
      verbose = true;
    } else if (!a.empty() && a[0] == '-') {
      err << "perf diff: unknown flag " << a << "\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) {
    err << "usage: perf diff <baseline.json> <current.json> [--tol X]"
           " [--allow-missing] [-v]\n";
    return 2;
  }
  auto baseline = LoadSuite(paths[0]);
  if (!baseline.ok()) {
    err << "perf diff: " << baseline.status().ToString() << "\n";
    return 2;
  }
  auto current = LoadSuite(paths[1]);
  if (!current.ok()) {
    err << "perf diff: " << current.status().ToString() << "\n";
    return 2;
  }
  PerfDiffResult result = DiffSuites(baseline.value(), current.value(), options);
  out << result.Table(verbose);
  out << result.Summary() << "\n";
  return result.ok() ? 0 : 1;
}

int RunMerge(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::string dir;
  std::string out_path;
  bool strip_registry = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "-o" || a == "--out") {
      if (i + 1 >= args.size()) {
        err << "perf merge: -o needs a path\n";
        return 2;
      }
      out_path = args[++i];
    } else if (a == "--strip-registry") {
      strip_registry = true;
    } else if (!a.empty() && a[0] == '-') {
      err << "perf merge: unknown flag " << a << "\n";
      return 2;
    } else if (dir.empty()) {
      dir = a;
    } else {
      err << "perf merge: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (dir.empty()) {
    err << "usage: perf merge <dir> [-o out.json] [--strip-registry]\n";
    return 2;
  }
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 12 &&
        name.compare(name.size() - 12, 12, ".report.json") == 0) {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    err << "perf merge: cannot read " << dir << ": " << ec.message() << "\n";
    return 2;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    err << "perf merge: no *.report.json files in " << dir << "\n";
    return 2;
  }
  SuiteReport suite;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    auto report = BenchReport::Parse(buf.str());
    if (!report.ok()) {
      err << "perf merge: " << path << ": " << report.status().ToString()
          << "\n";
      return 2;
    }
    if (strip_registry) report.value().registry = JsonValue();
    suite.Merge(std::move(report).value());
  }
  std::string body = suite.Json();
  if (out_path.empty()) {
    out << body;
  } else {
    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    os << body;
    if (!os) {
      err << "perf merge: cannot write " << out_path << "\n";
      return 2;
    }
    out << "merged " << suite.benches.size() << " bench reports -> " << out_path
        << "\n";
  }
  return 0;
}

}  // namespace

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kNew: return "new";
    case Verdict::kMissing: return "MISSING";
  }
  return "?";
}

PerfDiffResult DiffSuites(const SuiteReport& baseline, const SuiteReport& current,
                          const PerfDiffOptions& options) {
  PerfDiffResult result;
  result.fail_on_missing = options.fail_on_missing;

  auto add_row = [&result](MetricDiff row) {
    switch (row.verdict) {
      case Verdict::kOk: ++result.unchanged; break;
      case Verdict::kImproved: ++result.improved; break;
      case Verdict::kRegressed: ++result.regressed; break;
      case Verdict::kNew: ++result.added; break;
      case Verdict::kMissing: ++result.missing; break;
    }
    result.rows.push_back(std::move(row));
  };

  for (const BenchReport& base_bench : baseline.benches) {
    const BenchReport* cur_bench = current.FindBench(base_bench.bench);
    for (const BenchMetric& base_metric : base_bench.metrics) {
      MetricDiff row;
      row.bench = base_bench.bench;
      row.metric = base_metric.name;
      row.unit = base_metric.unit;
      row.direction = base_metric.direction;
      row.baseline = base_metric.value;
      row.tolerance = EffectiveTolerance(base_metric, options);
      const BenchMetric* cur_metric =
          cur_bench != nullptr ? cur_bench->FindMetric(base_metric.name) : nullptr;
      if (cur_metric == nullptr) {
        // Info metrics may legitimately come and go (e.g. wall-clock-only
        // rows); their absence does not gate.
        row.verdict =
            base_metric.direction == Direction::kInfo ? Verdict::kOk
                                                      : Verdict::kMissing;
        add_row(std::move(row));
        continue;
      }
      row.current = cur_metric->value;
      if (row.baseline == 0.0) {
        // No relative scale; any nonzero move on a gated metric is judged
        // against tolerance as an absolute step from zero.
        row.rel_delta = row.current == 0.0 ? 0.0 : (row.current > 0 ? 1.0 : -1.0);
        if (row.current == 0.0) {
          row.verdict = Verdict::kOk;
        } else {
          row.verdict = Judge(row.direction, row.rel_delta, 0.0);
        }
      } else {
        row.rel_delta = (row.current - row.baseline) / std::fabs(row.baseline);
        row.verdict = Judge(row.direction, row.rel_delta, row.tolerance);
      }
      add_row(std::move(row));
    }
  }
  for (const BenchReport& cur_bench : current.benches) {
    const BenchReport* base_bench = baseline.FindBench(cur_bench.bench);
    for (const BenchMetric& cur_metric : cur_bench.metrics) {
      if (base_bench != nullptr &&
          base_bench->FindMetric(cur_metric.name) != nullptr) {
        continue;
      }
      MetricDiff row;
      row.bench = cur_bench.bench;
      row.metric = cur_metric.name;
      row.unit = cur_metric.unit;
      row.direction = cur_metric.direction;
      row.current = cur_metric.value;
      row.tolerance = EffectiveTolerance(cur_metric, options);
      row.verdict = Verdict::kNew;
      add_row(std::move(row));
    }
  }
  return result;
}

std::string PerfDiffResult::Table(bool include_ok) const {
  std::vector<const MetricDiff*> shown;
  for (const MetricDiff& row : rows) {
    if (include_ok || row.verdict != Verdict::kOk) shown.push_back(&row);
  }
  if (shown.empty()) return "";
  size_t w_bench = 5, w_metric = 6, w_base = 8, w_cur = 7;
  for (const MetricDiff* row : shown) {
    w_bench = std::max(w_bench, row->bench.size());
    w_metric = std::max(w_metric, row->metric.size());
    w_base = std::max(w_base, FmtValue(row->baseline).size());
    w_cur = std::max(w_cur, FmtValue(row->current).size());
  }
  std::ostringstream out;
  auto pad = [&out](const std::string& s, size_t w) {
    out << s;
    for (size_t i = s.size(); i < w; ++i) out << ' ';
    out << "  ";
  };
  pad("bench", w_bench);
  pad("metric", w_metric);
  pad("baseline", w_base);
  pad("current", w_cur);
  pad("delta", 8);
  out << "verdict\n";
  for (const MetricDiff* row : shown) {
    pad(row->bench, w_bench);
    pad(row->metric, w_metric);
    pad(row->verdict == Verdict::kNew ? "-" : FmtValue(row->baseline), w_base);
    pad(row->verdict == Verdict::kMissing ? "-" : FmtValue(row->current), w_cur);
    pad(row->verdict == Verdict::kNew || row->verdict == Verdict::kMissing
            ? "-"
            : FmtPct(row->rel_delta),
        8);
    out << VerdictName(row->verdict) << "\n";
  }
  return out.str();
}

std::string PerfDiffResult::Summary() const {
  std::ostringstream out;
  out << "perf diff: " << regressed << " regressed, " << improved
      << " improved, " << missing << " missing, " << added << " new, "
      << unchanged << " within tolerance -> "
      << (ok() ? "OK" : "FAIL");
  return out.str();
}

int PerfCommand(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty()) {
    err << "usage: perf <diff|merge> ...\n";
    return 2;
  }
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (args[0] == "diff") return RunDiff(rest, out, err);
  if (args[0] == "merge") return RunMerge(rest, out, err);
  err << "perf: unknown subcommand '" << args[0] << "'\n";
  return 2;
}

}  // namespace diesel::obs
