// Node-scoped resource rollup over the metrics registry.
//
// Bound sim::Devices and net::Fabric links publish busy-time counters and
// queue-wait/service histograms under the systematic `node=` label
// convention ("n<id>"). ClusterView reads those series — from a live
// MetricsSnapshot (optionally deltaed against a window base) or from the
// registry JSON embedded in a bench report — and derives, per resource,
// utilization in [0,1]:
//
//   device: util = busy_ns / (channels * window)
//   link:   util = busy_ns / window          (serialized occupancy)
//
// then rolls resources up per node (a node is as hot as its busiest
// resource) and computes cluster-wide skew statistics (max/median ratio,
// coefficient of variation) exported as cluster.imbalance.* gauges. These
// feed obs::HotspotReport, `dlcmd util`, timeline sampling, and the
// bench-report gated rows.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace diesel::obs {

/// One device or link with derived utilization.
struct ResourceUtil {
  std::string name;   // device name or "nA->nB" link
  std::string node;   // "n<id>" owning/charged node; "" when unlabeled
  std::string kind;   // "device" | "link"
  double util = 0.0;      // clamped to [0, 1]
  double raw_util = 0.0;  // pre-clamp value (can exceed 1 transiently when
                          // backfilled work extends past the window edge)
  double busy_ns = 0.0;
  double channels = 1.0;
  double ops = 0.0;
  double mean_queue_wait_ns = 0.0;
  double mean_service_ns = 0.0;
};

/// Per-node rollup: a node is as hot as its busiest resource.
struct NodeUtil {
  std::string node;
  double util = 0.0;          // max over the node's resources
  std::string max_resource;   // name of the resource setting the max
  double sum_busy_ns = 0.0;
  size_t resources = 0;
};

/// Cluster-wide skew statistics over per-node utilization.
struct ImbalanceStats {
  double max_util = 0.0;
  double median_util = 0.0;
  double mean_util = 0.0;
  double cv = 0.0;               // stddev / mean (0 when mean == 0)
  double max_over_median = 0.0;  // 0 when median == 0
  std::string max_node;
  size_t nodes = 0;
};

/// Split a registry key "name{k=v,...}" into name + label map. Keys without
/// a label block parse to an empty map.
struct ParsedKey {
  std::string name;
  std::map<std::string, std::string> labels;
};
ParsedKey ParseMetricKey(const std::string& key);

class ClusterView {
 public:
  /// Derive the view from a live snapshot. Counters/histograms are deltaed
  /// against `base` when non-null (windowed view); gauges (channel counts)
  /// are always read from `current`. `window_ns == 0` infers the window from
  /// the busy_start/busy_end gauges.
  static ClusterView Compute(const MetricsSnapshot& current,
                             const MetricsSnapshot* base, Nanos window_ns);

  /// Derive the view from a bench report's embedded registry JSON (counters
  /// are numbers, histograms are {count,sum,mean,...} summaries).
  static Result<ClusterView> FromRegistryJson(const JsonValue& registry,
                                              Nanos window_ns);

  /// Widest busy window over bound devices: max(busy_end) - min(busy_start).
  /// Returns 0 when no device gauges are present.
  static Nanos InferWindow(const MetricsSnapshot& snap);

  /// Resources sorted by utilization, busiest first.
  const std::vector<ResourceUtil>& resources() const { return resources_; }
  /// Nodes sorted by node id ("n0", "n1", ...).
  const std::vector<NodeUtil>& nodes() const { return nodes_; }
  const ImbalanceStats& imbalance() const { return imbalance_; }
  Nanos window_ns() const { return window_ns_; }

  /// Publish derived gauges into the process registry:
  ///   sim.device.util{device,node}, net.link.util{link,node},
  ///   cluster.node.util{node}, cluster.imbalance.{max_util,median_util,
  ///   mean_util,cv,max_over_median,nodes}.
  void ExportGauges() const;

  /// Human-readable utilization table (what `dlcmd util` prints).
  std::string Render(size_t top_n = 0) const;

 private:
  struct HistoStat {
    double count = 0.0;
    double mean = 0.0;
  };
  static ClusterView Build(const std::map<std::string, double>& counters,
                           const std::map<std::string, double>& gauges,
                           const std::map<std::string, HistoStat>& histos,
                           Nanos window_ns);

  std::vector<ResourceUtil> resources_;
  std::vector<NodeUtil> nodes_;
  ImbalanceStats imbalance_;
  Nanos window_ns_ = 0;
};

}  // namespace diesel::obs
