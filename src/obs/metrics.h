// Process-wide metrics plane (counters, gauges, log-bucketed histograms).
//
// Every subsystem publishes named metrics into a thread-safe registry:
// names are dot-separated by subsystem ("net.rpc.calls", "cache.peer_hits"),
// optional labels qualify an instance ("net.rpc.calls{link=n0->n1}"). The
// registry hands out stable references, so hot paths cache a pointer once
// (function-local static or per-object field) and pay one relaxed atomic
// increment per event. Snapshots are immutable copies supporting delta
// (interval metrics around one bench repetition) and merge (aggregating
// across workers), with deterministic text and JSON export — virtual-time
// workloads therefore produce byte-identical dumps for the same seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace diesel::obs {

class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v);
  void Add(double delta);
  double value() const;
  void Reset();

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

/// Thread-safe wrapper promoting common::Histogram into the registry.
class Histo {
 public:
  void Observe(double v);
  /// Exemplar-capturing observe: when `trace_id` is non-zero and `v` lands
  /// above the exemplar threshold quantile, the span id rides along so
  /// `dlcmd tail` can resolve the tail observation to its span tree.
  void Observe(double v, uint64_t trace_id, double at);
  void SetExemplarQuantile(double q);
  Histogram Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mutex_;
  Histogram hist_;
};

/// Label set; canonicalized (sorted by key) when building the metric key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Point-in-time copy of every metric, keyed by "name{labels}".
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  /// Interval view: counters/histograms subtract (earlier must be a prefix
  /// of this stream), gauges report the difference. Metrics absent from
  /// `earlier` are taken whole.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Aggregate `other` into this snapshot (counters/gauges add, histograms
  /// merge) — combining per-worker registries into one report.
  void Merge(const MetricsSnapshot& other);

  /// Sum of every counter whose key starts with `prefix` (label part
  /// included in the match, so "net.rpc.drops" sums all links).
  uint64_t SumCounters(const std::string& prefix) const;

  /// Deterministic exports: keys sorted, doubles printed with %.6g.
  std::string Text() const;
  std::string Json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into.
  static MetricsRegistry& Default();

  /// Lookup-or-create; references stay valid for the registry's lifetime
  /// (ResetAll zeroes values in place, it never invalidates pointers).
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  Histo& GetHistogram(const std::string& name, const Labels& labels = {});

  MetricsSnapshot Snapshot() const;
  std::string Text() const { return Snapshot().Text(); }
  std::string Json() const { return Snapshot().Json(); }

  /// Zero every registered metric (fresh experiment repetition).
  void ResetAll();

  /// Canonical key: name + "{k=v,...}" with labels sorted by key.
  static std::string Key(const std::string& name, const Labels& labels);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histo>> histograms_;
};

/// Shorthand for the process-wide registry.
inline MetricsRegistry& Metrics() { return MetricsRegistry::Default(); }

}  // namespace diesel::obs
