#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace diesel::obs {
namespace {

std::string FmtValue(double v) {
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

Result<SloSource> ParseSource(const std::string& s) {
  if (s == "metric") return SloSource::kMetric;
  if (s == "counter") return SloSource::kCounter;
  if (s == "gauge") return SloSource::kGauge;
  if (s == "histogram_quantile") return SloSource::kHistogramQuantile;
  if (s == "stall_fraction") return SloSource::kStallFraction;
  if (s == "timeline_burn") return SloSource::kTimelineBurn;
  return Status::InvalidArgument("slo: unknown source: " + s);
}

/// Registry histograms export fixed quantile fields; map the requested
/// quantile onto one of them.
Result<std::string> QuantileField(double q) {
  if (q == 0.5) return std::string("p50");
  if (q == 0.9) return std::string("p90");
  if (q == 0.99) return std::string("p99");
  return Status::InvalidArgument("slo: quantile must be 0.5, 0.9 or 0.99");
}

/// Value of a counter / histogram-quantile signal inside one JSON object
/// holding "counters"/"histograms" maps (a registry snapshot or a timeline
/// bucket). Missing signal reads as 0 with found=false.
double SignalValue(const JsonValue& holder, SloSource source,
                   const std::string& key, const std::string& qfield,
                   bool* found) {
  *found = false;
  if (source == SloSource::kCounter || source == SloSource::kGauge) {
    const JsonValue* section =
        holder.Find(source == SloSource::kCounter ? "counters" : "gauges");
    const JsonValue* v = section ? section->Find(key) : nullptr;
    if (v == nullptr || !v->is_number()) return 0.0;
    *found = true;
    return v->number_value();
  }
  const JsonValue* hists = holder.Find("histograms");
  const JsonValue* h = hists ? hists->Find(key) : nullptr;
  if (h == nullptr || !h->is_object()) return 0.0;
  const JsonValue* v = h->Find(qfield);
  if (v == nullptr || !v->is_number()) return 0.0;
  *found = true;
  return v->number_value();
}

bool Meets(bool upper_bound, double value, double threshold) {
  return upper_bound ? value <= threshold : value >= threshold;
}

/// Burn-rate display: how much of the objective the value consumes
/// (>1 = violated). Degenerate thresholds fall back to 0-or-2 so the table
/// still reads correctly.
double BurnOf(bool upper_bound, double value, double threshold) {
  if (upper_bound) {
    if (threshold > 0.0) return value / threshold;
    return value <= threshold ? 0.0 : 2.0;
  }
  if (value > 0.0) return threshold / value;
  return threshold <= 0.0 ? 0.0 : 2.0;
}

SloResult EvaluateTimelineBurn(
    const SloSpec& spec,
    const std::vector<std::pair<std::string, JsonValue>>& timelines) {
  SloResult r;
  r.name = spec.name;
  r.bench = spec.bench;
  const JsonValue* doc = nullptr;
  for (const auto& [bench, timeline] : timelines) {
    if (bench == spec.bench) {
      doc = &timeline;
      break;
    }
  }
  if (doc == nullptr) {
    r.detail = "no timeline for bench " + spec.bench;
    return r;
  }
  const JsonValue* sections = doc->Find("sections");
  const JsonValue* section = nullptr;
  if (sections != nullptr && sections->is_array()) {
    for (const JsonValue& s : sections->array()) {
      if (s.GetString("label", "") == spec.section) {
        section = &s;
        break;
      }
    }
  }
  if (section == nullptr) {
    r.detail = "no timeline section '" + spec.section + "'";
    return r;
  }
  const JsonValue* buckets = section->Find("buckets");
  if (buckets == nullptr || !buckets->is_array() || buckets->array().empty()) {
    r.detail = "timeline section '" + spec.section + "' has no buckets";
    return r;
  }
  std::string qfield = "p99";
  if (spec.signal == SloSource::kHistogramQuantile) {
    auto qf = QuantileField(spec.quantile);
    if (!qf.ok()) {
      r.detail = qf.status().message();
      return r;
    }
    qfield = qf.value();
  }
  std::vector<bool> violating;
  violating.reserve(buckets->array().size());
  for (const JsonValue& b : buckets->array()) {
    bool found = false;
    double v = SignalValue(b, spec.signal, spec.key, qfield, &found);
    // A bucket with no signal observed cannot violate a bound.
    violating.push_back(found && !Meets(spec.upper_bound, v, spec.threshold));
  }
  size_t window = std::min(std::max<size_t>(spec.window_buckets, 1),
                           violating.size());
  size_t bad_in_window = 0, worst = 0;
  for (size_t i = 0; i < violating.size(); ++i) {
    bad_in_window += violating[i] ? 1 : 0;
    if (i >= window) bad_in_window -= violating[i - window] ? 1 : 0;
    if (i + 1 >= window) worst = std::max(worst, bad_in_window);
  }
  double worst_fraction =
      static_cast<double>(worst) / static_cast<double>(window);
  double budget = spec.error_budget > 0.0 ? spec.error_budget : 1.0;
  r.value = worst_fraction;
  r.burn_rate = worst_fraction / budget;
  r.pass = r.burn_rate <= spec.max_burn_rate;
  r.detail = "worst window " + std::to_string(worst) + "/" +
             std::to_string(window) + " buckets violating over " +
             std::to_string(violating.size()) + " total";
  return r;
}

SloResult EvaluateRunLevel(
    const SloSpec& spec, const SuiteReport& suite) {
  SloResult r;
  r.name = spec.name;
  r.bench = spec.bench;
  const BenchReport* report = suite.FindBench(spec.bench);
  if (report == nullptr) {
    r.detail = "no report for bench " + spec.bench;
    return r;
  }
  double value = 0.0;
  switch (spec.source) {
    case SloSource::kMetric: {
      const BenchMetric* m = report->FindMetric(spec.key);
      if (m == nullptr) {
        r.detail = "no metric '" + spec.key + "'";
        return r;
      }
      value = m->value;
      break;
    }
    case SloSource::kCounter:
    case SloSource::kGauge:
    case SloSource::kHistogramQuantile: {
      if (report->registry.is_null()) {
        r.detail = "report has no embedded registry";
        return r;
      }
      std::string qfield = "p99";
      if (spec.source == SloSource::kHistogramQuantile) {
        auto qf = QuantileField(spec.quantile);
        if (!qf.ok()) {
          r.detail = qf.status().message();
          return r;
        }
        qfield = qf.value();
      }
      bool found = false;
      value = SignalValue(report->registry, spec.source, spec.key, qfield,
                          &found);
      if (!found) {
        r.detail = "no registry entry '" + spec.key + "'";
        return r;
      }
      break;
    }
    case SloSource::kStallFraction: {
      int64_t fetch = 0, total = 0;
      for (const EpochPhases& e : report->epochs) {
        if (e.label != spec.key) continue;
        fetch += e.fetch_ns;
        total += e.TotalNs();
      }
      if (total == 0) {
        r.detail = "no epochs for arm '" + spec.key + "'";
        return r;
      }
      value = static_cast<double>(fetch) / static_cast<double>(total);
      break;
    }
    case SloSource::kTimelineBurn:
      r.detail = "timeline_burn handled separately";
      return r;
  }
  r.value = value;
  r.burn_rate = BurnOf(spec.upper_bound, value, spec.threshold);
  r.pass = Meets(spec.upper_bound, value, spec.threshold);
  r.detail = std::string(spec.upper_bound ? "<= " : ">= ") +
             FmtValue(spec.threshold);
  return r;
}

Result<JsonValue> LoadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::Parse(buf.str());
}

}  // namespace

Result<std::vector<SloSpec>> ParseSloSpecs(const JsonValue& doc) {
  if (doc.GetString("schema", "") != "diesel.slo/v1") {
    return Status::InvalidArgument("slo: not a diesel.slo/v1 document");
  }
  const JsonValue* slos = doc.Find("slos");
  if (slos == nullptr || !slos->is_array()) {
    return Status::InvalidArgument("slo: missing 'slos' array");
  }
  std::vector<SloSpec> specs;
  for (const JsonValue& s : slos->array()) {
    SloSpec spec;
    spec.name = s.GetString("name", "");
    spec.bench = s.GetString("bench", "");
    if (spec.name.empty() || spec.bench.empty()) {
      return Status::InvalidArgument("slo: every slo needs name and bench");
    }
    auto source = ParseSource(s.GetString("source", "metric"));
    if (!source.ok()) return source.status();
    spec.source = source.value();
    spec.key = s.GetString("key", "");
    spec.quantile = s.GetNumber("quantile", 0.99);
    std::string objective = s.GetString("objective", "<=");
    if (objective != "<=" && objective != ">=") {
      return Status::InvalidArgument("slo: objective must be <= or >=: " +
                                     spec.name);
    }
    spec.upper_bound = objective == "<=";
    const JsonValue* threshold = s.Find("threshold");
    if (threshold == nullptr || !threshold->is_number()) {
      return Status::InvalidArgument("slo: missing threshold: " + spec.name);
    }
    spec.threshold = threshold->number_value();
    if (spec.source == SloSource::kTimelineBurn) {
      spec.section = s.GetString("section", "");
      if (spec.section.empty()) {
        return Status::InvalidArgument("slo: timeline_burn needs section: " +
                                       spec.name);
      }
      auto signal = ParseSource(s.GetString("signal", "counter"));
      if (!signal.ok()) return signal.status();
      spec.signal = signal.value();
      if (spec.signal != SloSource::kCounter &&
          spec.signal != SloSource::kGauge &&
          spec.signal != SloSource::kHistogramQuantile) {
        return Status::InvalidArgument(
            "slo: signal must be counter, gauge or histogram_quantile: " +
            spec.name);
      }
      spec.error_budget = s.GetNumber("error_budget", 0.1);
      spec.window_buckets =
          static_cast<size_t>(s.GetNumber("window_buckets", 8));
      spec.max_burn_rate = s.GetNumber("max_burn_rate", 1.0);
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) return Status::InvalidArgument("slo: empty 'slos' array");
  return specs;
}

SloEval EvaluateSlos(const std::vector<SloSpec>& specs,
                     const SuiteReport& suite,
                     const std::vector<std::pair<std::string, JsonValue>>&
                         timelines) {
  SloEval eval;
  for (const SloSpec& spec : specs) {
    SloResult r = spec.source == SloSource::kTimelineBurn
                      ? EvaluateTimelineBurn(spec, timelines)
                      : EvaluateRunLevel(spec, suite);
    (r.pass ? eval.passed : eval.failed)++;
    eval.results.push_back(std::move(r));
  }
  return eval;
}

std::string SloEval::Table() const {
  size_t name_w = 4;
  for (const SloResult& r : results) name_w = std::max(name_w, r.name.size());
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %10s  %8s  %-7s  %s\n",
                static_cast<int>(name_w), "slo", "value", "burn", "verdict",
                "detail");
  out += line;
  for (const SloResult& r : results) {
    std::snprintf(line, sizeof(line), "%-*s  %10s  %8s  %-7s  %s\n",
                  static_cast<int>(name_w), r.name.c_str(),
                  FmtValue(r.value).c_str(), FmtValue(r.burn_rate).c_str(),
                  r.pass ? "ok" : "BREACH", r.detail.c_str());
    out += line;
  }
  return out;
}

std::string SloEval::Summary() const {
  return "slo: " + std::to_string(passed) + " met, " + std::to_string(failed) +
         " breached";
}

int SloCommand(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  std::string dir;
  std::string spec_path = "bench/slo.json";
  std::string bench_filter;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--slo") {
      if (i + 1 >= args.size()) {
        err << "slo: --slo needs a path\n";
        return 2;
      }
      spec_path = args[++i];
    } else if (a == "--bench") {
      if (i + 1 >= args.size()) {
        err << "slo: --bench needs a bench name\n";
        return 2;
      }
      bench_filter = args[++i];
    } else if (a == "-v" || a == "--verbose") {
      // The table always prints every row; accepted for symmetry with perf.
    } else if (!a.empty() && a[0] == '-') {
      err << "slo: unknown flag " << a << "\n";
      return 2;
    } else if (dir.empty()) {
      dir = a;
    } else {
      err << "slo: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (dir.empty()) {
    err << "usage: slo <dir> [--slo spec.json] [--bench name]\n";
    return 2;
  }

  auto spec_doc = LoadJsonFile(spec_path);
  if (!spec_doc.ok()) {
    err << "slo: " << spec_doc.status().ToString() << "\n";
    return 2;
  }
  auto specs = ParseSloSpecs(spec_doc.value());
  if (!specs.ok()) {
    err << "slo: " << specs.status().ToString() << "\n";
    return 2;
  }
  if (!bench_filter.empty()) {
    // Keep only objectives on the named bench — a missing signal counts as
    // a breach, so a partial report directory (CI smoke jobs running one
    // bench) must not be judged against the full objective set.
    auto& list = specs.value();
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const SloSpec& s) {
                                return s.bench != bench_filter;
                              }),
               list.end());
    if (list.empty()) {
      err << "slo: no objectives for bench " << bench_filter << "\n";
      return 2;
    }
  }

  std::error_code ec;
  std::vector<std::string> report_files, timeline_files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    auto ends_with = [&name](const char* suffix) {
      size_t n = std::string(suffix).size();
      return name.size() > n &&
             name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with(".report.json")) report_files.push_back(entry.path().string());
    if (ends_with(".timeline.json")) {
      timeline_files.push_back(entry.path().string());
    }
  }
  if (ec) {
    err << "slo: cannot read " << dir << ": " << ec.message() << "\n";
    return 2;
  }
  std::sort(report_files.begin(), report_files.end());
  std::sort(timeline_files.begin(), timeline_files.end());

  SuiteReport suite;
  if (report_files.empty()) {
    // Fall back to a merged suite document if per-bench reports are absent.
    auto merged = LoadJsonFile(
        (std::filesystem::path(dir) / "BENCH_RESULTS.json").string());
    if (!merged.ok()) {
      err << "slo: no *.report.json in " << dir << " and no BENCH_RESULTS.json\n";
      return 2;
    }
    auto parsed = SuiteReport::FromJson(merged.value());
    if (!parsed.ok()) {
      err << "slo: " << parsed.status().ToString() << "\n";
      return 2;
    }
    suite = std::move(parsed).value();
  } else {
    for (const std::string& path : report_files) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      auto report = BenchReport::Parse(buf.str());
      if (!report.ok()) {
        err << "slo: " << path << ": " << report.status().ToString() << "\n";
        return 2;
      }
      suite.Merge(std::move(report).value());
    }
  }

  std::vector<std::pair<std::string, JsonValue>> timelines;
  for (const std::string& path : timeline_files) {
    auto doc = LoadJsonFile(path);
    if (!doc.ok()) {
      err << "slo: " << path << ": " << doc.status().ToString() << "\n";
      return 2;
    }
    std::string bench = doc.value().GetString("bench", "");
    if (bench.empty()) {
      bench = std::filesystem::path(path).filename().string();
      bench = bench.substr(0, bench.size() - std::string(".timeline.json").size());
    }
    timelines.emplace_back(bench, std::move(doc).value());
  }

  SloEval eval = EvaluateSlos(specs.value(), suite, timelines);
  out << eval.Table();
  out << eval.Summary() << "\n";
  return eval.ok() ? 0 : 1;
}

int TimelineCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  std::string path, key, section_filter;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--key") {
      if (i + 1 >= args.size()) {
        err << "timeline: --key needs a name\n";
        return 2;
      }
      key = args[++i];
    } else if (a == "--section") {
      if (i + 1 >= args.size()) {
        err << "timeline: --section needs a label\n";
        return 2;
      }
      section_filter = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      err << "timeline: unknown flag " << a << "\n";
      return 2;
    } else if (path.empty()) {
      path = a;
    } else {
      err << "timeline: unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (path.empty()) {
    err << "usage: timeline <file.timeline.json> [--section S] [--key K]\n";
    return 2;
  }
  auto doc = LoadJsonFile(path);
  if (!doc.ok()) {
    err << "timeline: " << doc.status().ToString() << "\n";
    return 2;
  }
  if (doc.value().GetString("schema", "") != "diesel.timeline/v1") {
    err << "timeline: not a diesel.timeline/v1 document\n";
    return 2;
  }
  const JsonValue* sections = doc.value().Find("sections");
  if (sections == nullptr || !sections->is_array()) {
    err << "timeline: missing sections\n";
    return 2;
  }
  out << "timeline: " << doc.value().GetString("bench", "?") << "\n";
  for (const JsonValue& s : sections->array()) {
    std::string label = s.GetString("label", "?");
    if (!section_filter.empty() && label != section_filter) continue;
    const JsonValue* buckets = s.Find("buckets");
    size_t n = buckets != nullptr && buckets->is_array()
                   ? buckets->array().size()
                   : 0;
    out << "section " << label << ": " << n << " buckets x "
        << s.GetNumber("bucket_ns", 0) / 1e6 << "ms\n";
    double dropped = s.GetNumber("dropped", 0);
    if (dropped > 0) {
      out << "  WARNING: section '" << label << "' dropped "
          << FmtValue(dropped)
          << " ticks past capacity — curves below are TRUNCATED and later "
             "buckets are missing\n";
    }
    if (n == 0) continue;
    if (key.empty()) {
      // No key chosen: list the counters seen in this section with totals.
      std::vector<std::pair<std::string, double>> totals;
      for (const JsonValue& b : buckets->array()) {
        const JsonValue* counters = b.Find("counters");
        if (counters == nullptr || !counters->is_object()) continue;
        for (const auto& [k, v] : counters->object()) {
          bool merged = false;
          for (auto& [tk, tv] : totals) {
            if (tk == k) {
              tv += v.number_value();
              merged = true;
              break;
            }
          }
          if (!merged) totals.emplace_back(k, v.number_value());
        }
      }
      std::sort(totals.begin(), totals.end());
      for (const auto& [k, total] : totals) {
        out << "  " << k << " total=" << FmtValue(total) << "\n";
      }
      continue;
    }
    // Curve of one counter (or histogram p99) across buckets, with bars.
    std::vector<double> curve;
    double peak = 0.0;
    for (const JsonValue& b : buckets->array()) {
      bool found = false;
      double v = SignalValue(b, SloSource::kCounter, key, "p99", &found);
      if (!found) v = SignalValue(b, SloSource::kHistogramQuantile, key, "p99",
                                  &found);
      curve.push_back(v);
      peak = std::max(peak, v);
    }
    for (size_t i = 0; i < curve.size(); ++i) {
      const JsonValue& b = buckets->array()[i];
      int bar = peak > 0.0 ? static_cast<int>(curve[i] / peak * 40.0) : 0;
      char line[160];
      std::snprintf(line, sizeof(line), "  %8.2fms %12s |%s\n",
                    b.GetNumber("t", 0) / 1e6, FmtValue(curve[i]).c_str(),
                    std::string(static_cast<size_t>(bar), '#').c_str());
      out << line;
    }
  }
  return 0;
}

}  // namespace diesel::obs
