// Declarative SLO engine for the bench suite.
//
// `bench/slo.json` declares service-level objectives over the artifacts a
// suite run leaves behind: end-of-run values read from a bench report (a
// gated metric, a registry counter, a histogram quantile, an arm's stall
// fraction) and burn rates evaluated over `diesel.timeline/v1` windows — a
// window "burns" when the fraction of violating buckets inside it exceeds
// the declared error budget. Unlike the perf gate (relative drift against a
// committed baseline), SLOs are absolute contracts: the numbers come from
// the paper's claims and the roadmap's recovery-time objectives, not from
// yesterday's run. `dlcmd slo <dir>` and the CI `slo-gate` job evaluate the
// committed spec against a suite output directory and exit 0/1; since every
// input is virtual-time deterministic, the verdict is too.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/report.h"

namespace diesel::obs {

/// What a run-level SLO (or a timeline burn signal) measures.
enum class SloSource {
  kMetric,             // gated bench metric by name
  kCounter,            // registry counter by full key (labels included)
  kGauge,              // registry gauge by full key (e.g. cluster.node.util)
  kHistogramQuantile,  // registry histogram quantile (0.5 / 0.9 / 0.99)
  kStallFraction,      // sum(fetch_ns)/sum(total_ns) of one epoch arm
  kTimelineBurn,       // burn rate over timeline windows (see SloSpec)
};

struct SloSpec {
  std::string name;
  std::string bench;
  SloSource source = SloSource::kMetric;
  std::string key;       // metric/counter/histogram key or epoch arm label
  double quantile = 0.99;
  bool upper_bound = true;  // objective "<=" (true) or ">=" (false)
  double threshold = 0.0;

  // kTimelineBurn only: which section, which per-bucket signal, and the
  // burn-rate contract.
  std::string section;
  SloSource signal = SloSource::kCounter;  // kCounter/kGauge/kHistogramQuantile
  double error_budget = 0.1;   // allowed violating-bucket fraction per window
  size_t window_buckets = 8;   // sliding window width
  double max_burn_rate = 1.0;  // fail when any window burns faster
};

struct SloResult {
  std::string name;
  std::string bench;
  double value = 0.0;      // measured value (worst window fraction for burn)
  double burn_rate = 0.0;  // value/threshold-style consumption, >1 = violated
  bool pass = false;
  std::string detail;      // human-readable evidence / failure reason
};

struct SloEval {
  std::vector<SloResult> results;
  int passed = 0;
  int failed = 0;

  bool ok() const { return failed == 0; }
  /// Fixed-width verdict table (all rows; SLOs are few and absolute).
  std::string Table() const;
  std::string Summary() const;
};

Result<std::vector<SloSpec>> ParseSloSpecs(const JsonValue& doc);

/// Evaluate `specs` against a suite: reports by bench name, timelines as
/// parsed `diesel.timeline/v1` documents keyed by bench name. A spec whose
/// bench/key/section cannot be resolved fails (a silently missing signal is
/// itself an SLO breach).
SloEval EvaluateSlos(const std::vector<SloSpec>& specs,
                     const SuiteReport& suite,
                     const std::vector<std::pair<std::string, JsonValue>>&
                         timelines);

/// `dlcmd slo` entry point (also called directly by tests):
///   slo <dir> [--slo <spec.json>] [-v]
/// Loads *.report.json and *.timeline.json from <dir>, evaluates the spec
/// (default: bench/slo.json relative to the current directory), prints the
/// verdict table. Returns the process exit code (0 = all SLOs met).
int SloCommand(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);

/// `dlcmd timeline` entry point:
///   timeline <file.timeline.json> [--key K] [--section S]
/// Pretty-prints a `diesel.timeline/v1` document: per-section bucket curves
/// (ops and key counters, or the curve of one counter/histogram `--key`).
int TimelineCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace diesel::obs
