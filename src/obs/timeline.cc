#include "obs/timeline.h"

#include <cstdio>

namespace diesel::obs {
namespace {

struct TimelineCounters {
  Counter& samples = Metrics().GetCounter("timeline.samples");
  Counter& closed = Metrics().GetCounter("timeline.buckets");
  Counter& dropped = Metrics().GetCounter("timeline.dropped");
};

TimelineCounters& Counters() {
  static TimelineCounters c;
  return c;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Timeline::Timeline(Options options) : options_(options) {
  if (options_.bucket_ns <= 0) options_.bucket_ns = 1'000'000;
  if (options_.capacity == 0) options_.capacity = 1;
}

void Timeline::Start(Nanos at) {
  started_ = true;
  section_start_ = at;
  cursor_ = at;
  last_ = Metrics().Snapshot();
  ring_.clear();
  notes_.clear();
  dropped_ = 0;
}

void Timeline::AdvanceTo(Nanos now) {
  if (!started_ || cursor_ + options_.bucket_ns > now) return;
  // One registry snapshot per boundary-crossing call: the delta lands in the
  // first crossed bucket, any further buckets crossed by the same call stay
  // empty (nothing sampled them in between).
  MetricsSnapshot snap = Metrics().Snapshot();
  bool first = true;
  while (cursor_ + options_.bucket_ns <= now) {
    Nanos end = cursor_ + options_.bucket_ns;
    Bucket b;
    b.start = cursor_;
    b.end = end;
    if (first) {
      b.delta = snap.DeltaSince(last_);
      first = false;
    }
    ring_.push_back(std::move(b));
    if (ring_.size() > options_.capacity) {
      ring_.erase(ring_.begin());
      ++dropped_;
      Counters().dropped.Inc();
    }
    Counters().closed.Inc();
    cursor_ = end;
  }
  last_ = std::move(snap);
  Counters().samples.Inc();
}

void Timeline::Finish(Nanos now) {
  if (!started_ || now <= cursor_) {
    started_ = false;
    return;
  }
  AdvanceTo(now);
  if (now > cursor_) {
    Bucket b;
    b.start = cursor_;
    b.end = now;
    MetricsSnapshot snap = Metrics().Snapshot();
    b.delta = snap.DeltaSince(last_);
    last_ = std::move(snap);
    ring_.push_back(std::move(b));
    if (ring_.size() > options_.capacity) {
      ring_.erase(ring_.begin());
      ++dropped_;
      Counters().dropped.Inc();
    }
    Counters().closed.Inc();
    cursor_ = now;
  }
  started_ = false;
}

void Timeline::Note(Nanos at, std::string text) {
  notes_.push_back({at, std::move(text)});
}

std::string Timeline::SectionJson(const std::string& label) const {
  std::string out = "    {\n      \"label\": \"" + JsonEscape(label) + "\",\n";
  out += "      \"bucket_ns\": " + std::to_string(options_.bucket_ns) + ",\n";
  out += "      \"start\": " + std::to_string(section_start_) + ",\n";
  out += "      \"dropped\": " + std::to_string(dropped_) + ",\n";
  out += "      \"buckets\": [";
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Bucket& b = ring_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"t\": " + std::to_string(b.start) +
           ", \"end\": " + std::to_string(b.end);
    bool first = true;
    for (const auto& [key, value] : b.delta.counters) {
      if (value == 0) continue;
      out += first ? ", \"counters\": {" : ", ";
      first = false;
      out += "\"" + JsonEscape(key) + "\": " + std::to_string(value);
    }
    if (!first) out += "}";
    first = true;
    for (const auto& [key, value] : b.delta.gauges) {
      if (value == 0.0) continue;
      out += first ? ", \"gauges\": {" : ", ";
      first = false;
      out += "\"" + JsonEscape(key) + "\": " + FmtDouble(value);
    }
    if (!first) out += "}";
    first = true;
    for (const auto& [key, hist] : b.delta.histograms) {
      if (hist.count() == 0) continue;
      out += first ? ", \"histograms\": {" : ", ";
      first = false;
      out += "\"" + JsonEscape(key) + "\": " + hist.SummaryJson();
    }
    if (!first) out += "}";
    out += "}";
  }
  out += ring_.empty() ? "],\n" : "\n      ],\n";
  out += "      \"notes\": [";
  for (size_t i = 0; i < notes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"at\": " + std::to_string(notes_[i].first) + ", \"text\": \"" +
           JsonEscape(notes_[i].second) + "\"}";
  }
  out += "]\n    }";
  return out;
}

std::string TimelineDocumentJson(const std::string& bench,
                                 const std::vector<std::string>& sections) {
  std::string out = "{\n  \"schema\": \"diesel.timeline/v1\",\n";
  out += "  \"bench\": \"" + JsonEscape(bench) + "\",\n";
  out += "  \"sections\": [";
  for (size_t i = 0; i < sections.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += sections[i];
  }
  out += sections.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace diesel::obs
