#include "obs/hotspot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace diesel::obs {
namespace {

double HistoSum(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0.0 : it->second.sum();
}

double JsonHistoSum(const JsonValue& registry, const std::string& name) {
  const JsonValue* hists = registry.Find("histograms");
  if (hists == nullptr) return 0.0;
  const JsonValue* h = hists->Find(name);
  return h == nullptr ? 0.0 : h->GetNumber("sum", 0.0);
}

}  // namespace

HotspotReport HotspotReport::Build(const ClusterView& view,
                                   const MetricsSnapshot& snap) {
  PhaseTotals phases;
  phases.total_ns = HistoSum(snap, "read.path.total_ns");
  phases.owner_wait_ns = HistoSum(snap, "read.path.owner_wait_ns");
  phases.device_ns = HistoSum(snap, "read.path.device_ns");
  phases.rpc_ns = HistoSum(snap, "read.path.rpc_ns");
  return BuildImpl(view, phases);
}

Result<HotspotReport> HotspotReport::FromRegistryJson(
    const ClusterView& view, const JsonValue& registry) {
  if (!registry.is_object()) {
    return Status::InvalidArgument("registry JSON is not an object");
  }
  PhaseTotals phases;
  phases.total_ns = JsonHistoSum(registry, "read.path.total_ns");
  phases.owner_wait_ns = JsonHistoSum(registry, "read.path.owner_wait_ns");
  phases.device_ns = JsonHistoSum(registry, "read.path.device_ns");
  phases.rpc_ns = JsonHistoSum(registry, "read.path.rpc_ns");
  return BuildImpl(view, phases);
}

HotspotReport HotspotReport::BuildImpl(const ClusterView& view,
                                       PhaseTotals phases) {
  HotspotReport report;
  report.phases_ = phases;
  report.imbalance_ = view.imbalance();
  for (const ResourceUtil& r : view.resources()) {
    HotspotEntry e;
    e.resource = r;
    e.total_queue_wait_ns = r.ops * r.mean_queue_wait_ns;
    if (r.util < 1.0) {
      e.expected_wait_ns = r.util / (1.0 - r.util) * r.mean_service_ns;
      if (e.expected_wait_ns > 0.0) {
        e.wait_ratio = r.mean_queue_wait_ns / e.expected_wait_ns;
      }
    }
    report.entries_.push_back(std::move(e));
  }
  std::stable_sort(report.entries_.begin(), report.entries_.end(),
                   [](const HotspotEntry& a, const HotspotEntry& b) {
                     if (a.resource.util != b.resource.util) {
                       return a.resource.util > b.resource.util;
                     }
                     return a.total_queue_wait_ns > b.total_queue_wait_ns;
                   });
  return report;
}

std::string HotspotReport::Render(size_t top_n) const {
  std::string out;
  char line[256];
  if (phases_.total_ns > 0.0) {
    auto pct = [&](double v) { return 100.0 * v / phases_.total_ns; };
    std::snprintf(line, sizeof(line),
                  "read path: total %.3f ms — owner_wait %.1f%%, "
                  "device %.1f%%, rpc %.1f%%\n",
                  phases_.total_ns / 1e6, pct(phases_.owner_wait_ns),
                  pct(phases_.device_ns), pct(phases_.rpc_ns));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-28s %-6s %7s %14s %12s %9s\n",
                "hotspot", "node", "util", "q-wait total(ms)",
                "M/M/1 wait(us)", "obs/exp");
  out += line;
  size_t shown = 0;
  for (const HotspotEntry& e : entries_) {
    if (top_n > 0 && shown >= top_n) break;
    std::snprintf(line, sizeof(line),
                  "%-28s %-6s %6.1f%% %14.3f %12.1f %9.2f\n",
                  e.resource.name.c_str(), e.resource.node.c_str(),
                  e.resource.util * 100.0, e.total_queue_wait_ns / 1e6,
                  e.expected_wait_ns / 1e3, e.wait_ratio);
    out += line;
    ++shown;
  }
  std::snprintf(line, sizeof(line),
                "imbalance: max %.1f%% on %s, max/median %.2f, cv %.2f\n",
                imbalance_.max_util * 100.0, imbalance_.max_node.c_str(),
                imbalance_.max_over_median, imbalance_.cv);
  out += line;
  return out;
}

namespace {

struct ResourceArgs {
  std::string path;
  Nanos window_ns = 0;
  size_t top_n = 0;
};

int ParseResourceArgs(const char* cmd, const std::vector<std::string>& args,
                      ResourceArgs* out, std::ostream& err) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--window" || a == "--top") {
      if (i + 1 >= args.size()) {
        err << cmd << ": " << a << " needs a value\n";
        return 2;
      }
      if (a == "--window") {
        out->window_ns = static_cast<Nanos>(std::stoll(args[++i]));
      } else {
        out->top_n = std::stoul(args[++i]);
      }
    } else if (!a.empty() && a[0] == '-') {
      err << cmd << ": unknown flag " << a << "\n";
      return 2;
    } else if (out->path.empty()) {
      out->path = a;
    } else {
      err << cmd << ": unexpected argument " << a << "\n";
      return 2;
    }
  }
  if (out->path.empty()) {
    err << "usage: " << cmd << " <report.json> [--window ns] [--top N]\n";
    return 2;
  }
  return 0;
}

/// Accepts either a bench report (registry under "registry") or a bare
/// registry dump (counters/gauges/histograms at top level).
Result<JsonValue> LoadRegistryDoc(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = JsonValue::Parse(buf.str());
  if (!doc.ok()) return doc.status();
  if (const JsonValue* reg = doc.value().Find("registry");
      reg != nullptr && reg->is_object()) {
    return *reg;
  }
  if (doc.value().Find("counters") != nullptr) return std::move(doc).value();
  return Status::InvalidArgument(path +
                                 ": neither a bench report with an embedded "
                                 "registry nor a registry dump");
}

/// CI contract: every derived utilization must be a finite value in [0,1].
Status ValidateUtil(const ClusterView& view) {
  for (const ResourceUtil& r : view.resources()) {
    if (!std::isfinite(r.util) || r.util < 0.0 || r.util > 1.0) {
      return Status::Internal("utilization out of range for " + r.name +
                              ": " + std::to_string(r.util));
    }
  }
  for (const NodeUtil& n : view.nodes()) {
    if (!std::isfinite(n.util) || n.util < 0.0 || n.util > 1.0) {
      return Status::Internal("node utilization out of range for " + n.node +
                              ": " + std::to_string(n.util));
    }
  }
  return Status::Ok();
}

Result<ClusterView> ViewFromArgs(const ResourceArgs& ra, JsonValue* registry) {
  auto doc = LoadRegistryDoc(ra.path);
  if (!doc.ok()) return doc.status();
  *registry = std::move(doc).value();
  auto view = ClusterView::FromRegistryJson(*registry, ra.window_ns);
  if (!view.ok()) return view.status();
  if (view.value().resources().empty()) {
    return Status::NotFound(ra.path +
                            ": no sim.device.*/net.link.* series — was the "
                            "workload run with device metrics bound?");
  }
  DIESEL_RETURN_IF_ERROR(ValidateUtil(view.value()));
  return view;
}

}  // namespace

int UtilCommand(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ResourceArgs ra;
  if (int rc = ParseResourceArgs("util", args, &ra, err); rc != 0) return rc;
  JsonValue registry;
  auto view = ViewFromArgs(ra, &registry);
  if (!view.ok()) {
    err << "util: " << view.status().ToString() << "\n";
    return 1;
  }
  out << view.value().Render(ra.top_n);
  return 0;
}

int HotspotsCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  ResourceArgs ra;
  if (int rc = ParseResourceArgs("hotspots", args, &ra, err); rc != 0) {
    return rc;
  }
  JsonValue registry;
  auto view = ViewFromArgs(ra, &registry);
  if (!view.ok()) {
    err << "hotspots: " << view.status().ToString() << "\n";
    return 1;
  }
  auto report = HotspotReport::FromRegistryJson(view.value(), registry);
  if (!report.ok()) {
    err << "hotspots: " << report.status().ToString() << "\n";
    return 1;
  }
  out << report.value().Render(ra.top_n == 0 ? 10 : ra.top_n);
  return 0;
}

}  // namespace diesel::obs
