// Virtual-time span tracer.
//
// A Tracer records causally-linked spans: one span per logical operation
// (a cache GetFile, an RPC exchange, a KV op), stamped with the owning
// worker's virtual clock at open and close. Parenthood propagates through a
// thread-local context stack, so the synchronous call chain
//   cache.get_file -> rpc:n0->n1 -> server.read_chunk -> kv.mget -> rpc:...
// materializes as one connected tree without any explicit context plumbing:
// each layer opens a ScopedSpan and the fabric's handler runs on the same
// OS thread as the caller.
//
// Because every timestamp is virtual, a deterministic workload (same seed,
// same fault plan) produces a byte-identical dump — the trace plane is
// itself a correctness tool for the fault injector: drops, flaps, latency
// spikes and payload corruption all surface as span annotations.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/clock.h"

namespace diesel::obs {

/// Spans carry the sim::NodeId of the worker that opened them; kNoNode for
/// node-less contexts (admin clocks, tests).
constexpr uint32_t kNoNode = static_cast<uint32_t>(-1);
constexpr uint64_t kNoSpan = 0;

struct SpanNote {
  Nanos at = 0;
  std::string text;
};

struct Span {
  uint64_t id = kNoSpan;      // 1-based; 0 is "no span"
  uint64_t parent = kNoSpan;  // kNoSpan for roots
  std::string name;
  uint32_t node = kNoNode;
  Nanos start = 0;
  Nanos end = 0;
  std::vector<SpanNote> notes;
};

class FlightRecorder;

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open a span; returns its id. Ids are sequential in open order, so a
  /// deterministic workload numbers spans identically across runs.
  uint64_t Begin(std::string name, Nanos start, uint32_t node,
                 uint64_t parent);
  void End(uint64_t id, Nanos end);
  void Note(uint64_t id, Nanos at, std::string text);

  size_t size() const;
  std::vector<Span> spans() const;
  void Clear();

  /// Innermost open span of this tracer on the calling thread (kNoSpan when
  /// nothing is open) — the trace id that histogram exemplars capture.
  uint64_t CurrentSpanId();

  /// Copy of span `id`; returns false for kNoSpan or ids never issued.
  bool Find(uint64_t id, Span* out) const;

  /// Completed spans are mirrored into `recorder`'s ring (nullptr detaches).
  void set_flight_recorder(FlightRecorder* recorder);

  /// Deterministic tree dump: roots and children ordered by (start, id),
  /// two-space indent per depth, annotations inline.
  std::string TextDump() const;
  /// The tree containing span `id`: walks up to the root, then dumps that
  /// root's subtree in TextDump format. Empty for unknown ids.
  std::string TreeDump(uint64_t id) const;
  /// Flat JSON array of spans in id order.
  std::string JsonDump() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;  // spans_[id - 1]
  FlightRecorder* flight_recorder_ = nullptr;
};

/// RAII span bound to a virtual clock: start is stamped at construction and
/// end at destruction, so the span covers however far the operation advanced
/// the clock. A null tracer makes every operation a no-op (pay-for-use, like
/// the fault injector). Non-copyable and tied to scope: spans must close in
/// LIFO order per thread.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string name, sim::VirtualClock& clock,
             uint32_t node = kNoNode);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }
  uint64_t id() const { return id_; }

  /// Annotate this span at the bound clock's current time.
  void Note(std::string text);
  void NoteAt(Nanos at, std::string text);

  /// Annotate the innermost open span of `tracer` on the calling thread
  /// (no-op when tracer is null or nothing is open) — lets deep layers that
  /// never opened a span (e.g. the corruption injection site) attach fault
  /// evidence to whatever operation is in flight.
  static void NoteCurrent(Tracer* tracer, Nanos at, std::string text);

 private:
  Tracer* tracer_ = nullptr;
  sim::VirtualClock* clock_ = nullptr;
  uint64_t id_ = kNoSpan;
};

}  // namespace diesel::obs
