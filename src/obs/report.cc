#include "obs/report.h"

#include <algorithm>

namespace diesel::obs {
namespace {

Direction DirectionFromName(const std::string& name) {
  if (name == "higher") return Direction::kHigherIsBetter;
  if (name == "lower") return Direction::kLowerIsBetter;
  return Direction::kInfo;
}

JsonValue MetricToJson(const BenchMetric& m) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", m.name);
  doc.Set("unit", m.unit);
  doc.Set("value", m.value);
  doc.Set("direction", DirectionName(m.direction));
  doc.Set("tolerance", m.tolerance);
  return doc;
}

JsonValue PhasesToJson(const EpochPhases& e) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("label", e.label);
  doc.Set("epoch", e.epoch);
  doc.Set("fetch_ns", e.fetch_ns);
  doc.Set("shuffle_ns", e.shuffle_ns);
  doc.Set("train_ns", e.train_ns);
  doc.Set("other_ns", e.other_ns);
  doc.Set("total_ns", e.TotalNs());
  return doc;
}

}  // namespace

const char* DirectionName(Direction d) {
  switch (d) {
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kLowerIsBetter: return "lower";
    case Direction::kInfo: return "info";
  }
  return "info";
}

JsonValue BenchReport::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", kSchema);
  doc.Set("bench", bench);
  doc.Set("seed", seed);
  doc.Set("virtual_ns", virtual_ns);
  JsonValue params_doc = JsonValue::MakeObject();
  for (const auto& [k, v] : params) params_doc.Set(k, v);
  doc.Set("params", std::move(params_doc));
  JsonValue metrics_doc = JsonValue::MakeArray();
  for (const BenchMetric& m : metrics) metrics_doc.Append(MetricToJson(m));
  doc.Set("metrics", std::move(metrics_doc));
  if (!epochs.empty()) {
    JsonValue epochs_doc = JsonValue::MakeArray();
    for (const EpochPhases& e : epochs) epochs_doc.Append(PhasesToJson(e));
    doc.Set("epochs", std::move(epochs_doc));
  }
  if (!registry.is_null()) doc.Set("registry", registry);
  return doc;
}

Result<BenchReport> BenchReport::FromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("bench report: not an object");
  }
  std::string schema = doc.GetString("schema", "");
  if (schema != kSchema) {
    return Status::InvalidArgument("bench report: unexpected schema '" +
                                   schema + "'");
  }
  BenchReport report;
  report.bench = doc.GetString("bench", "");
  if (report.bench.empty()) {
    return Status::InvalidArgument("bench report: missing 'bench' name");
  }
  report.seed = static_cast<uint64_t>(doc.GetNumber("seed", 0));
  report.virtual_ns = static_cast<uint64_t>(doc.GetNumber("virtual_ns", 0));
  if (const JsonValue* params = doc.Find("params");
      params != nullptr && params->is_object()) {
    for (const auto& [k, v] : params->object()) {
      report.params.emplace_back(k, v.is_string() ? v.string_value() : v.Dump());
    }
  }
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return Status::InvalidArgument("bench report: missing 'metrics' array");
  }
  for (const JsonValue& m : metrics->array()) {
    if (!m.is_object()) {
      return Status::InvalidArgument("bench report: metric is not an object");
    }
    BenchMetric metric;
    metric.name = m.GetString("name", "");
    if (metric.name.empty()) {
      return Status::InvalidArgument("bench report: metric missing 'name'");
    }
    metric.unit = m.GetString("unit", "");
    const JsonValue* value = m.Find("value");
    if (value == nullptr || !value->is_number()) {
      return Status::InvalidArgument("bench report: metric '" + metric.name +
                                     "' missing numeric 'value'");
    }
    metric.value = value->number_value();
    metric.direction = DirectionFromName(m.GetString("direction", "info"));
    metric.tolerance = m.GetNumber("tolerance", 0.01);
    report.metrics.push_back(std::move(metric));
  }
  if (const JsonValue* epochs = doc.Find("epochs");
      epochs != nullptr && epochs->is_array()) {
    for (const JsonValue& e : epochs->array()) {
      EpochPhases phases;
      phases.label = e.GetString("label", "");
      phases.epoch = static_cast<int64_t>(e.GetNumber("epoch", 0));
      phases.fetch_ns = static_cast<int64_t>(e.GetNumber("fetch_ns", 0));
      phases.shuffle_ns = static_cast<int64_t>(e.GetNumber("shuffle_ns", 0));
      phases.train_ns = static_cast<int64_t>(e.GetNumber("train_ns", 0));
      phases.other_ns = static_cast<int64_t>(e.GetNumber("other_ns", 0));
      report.epochs.push_back(std::move(phases));
    }
  }
  if (const JsonValue* registry = doc.Find("registry"); registry != nullptr) {
    report.registry = *registry;
  }
  return report;
}

Result<BenchReport> BenchReport::Parse(std::string_view text) {
  auto doc = JsonValue::Parse(text);
  DIESEL_RETURN_IF_ERROR(doc.status());
  return FromJson(doc.value());
}

const BenchMetric* BenchReport::FindMetric(std::string_view name) const {
  for (const BenchMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void SuiteReport::Merge(BenchReport report) {
  auto it = std::lower_bound(
      benches.begin(), benches.end(), report,
      [](const BenchReport& a, const BenchReport& b) { return a.bench < b.bench; });
  if (it != benches.end() && it->bench == report.bench) {
    *it = std::move(report);
  } else {
    benches.insert(it, std::move(report));
  }
}

const BenchReport* SuiteReport::FindBench(std::string_view name) const {
  for (const BenchReport& b : benches) {
    if (b.bench == name) return &b;
  }
  return nullptr;
}

JsonValue SuiteReport::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", kSchema);
  JsonValue arr = JsonValue::MakeArray();
  for (const BenchReport& b : benches) arr.Append(b.ToJson());
  doc.Set("benches", std::move(arr));
  return doc;
}

Result<SuiteReport> SuiteReport::FromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("suite report: not an object");
  }
  std::string schema = doc.GetString("schema", "");
  SuiteReport suite;
  if (schema == kSchema) {
    const JsonValue* arr = doc.Find("benches");
    if (arr == nullptr || !arr->is_array()) {
      return Status::InvalidArgument("suite report: missing 'benches' array");
    }
    for (const JsonValue& b : arr->array()) {
      auto report = BenchReport::FromJson(b);
      DIESEL_RETURN_IF_ERROR(report.status());
      suite.Merge(std::move(report).value());
    }
    return suite;
  }
  // A single bench report is accepted as a one-entry suite, so `perf diff`
  // can also compare individual report files.
  auto report = BenchReport::FromJson(doc);
  DIESEL_RETURN_IF_ERROR(report.status());
  suite.Merge(std::move(report).value());
  return suite;
}

Result<SuiteReport> SuiteReport::Parse(std::string_view text) {
  auto doc = JsonValue::Parse(text);
  DIESEL_RETURN_IF_ERROR(doc.status());
  return FromJson(doc.value());
}

}  // namespace diesel::obs
