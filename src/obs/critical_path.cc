#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace diesel::obs {
namespace {

struct Tree {
  std::unordered_map<uint64_t, const Span*> by_id;
  std::unordered_map<uint64_t, std::vector<const Span*>> children;
};

/// Walk the tree under `s` over the window [t0, t1], appending critical
/// segments in reverse time order. At each level the last-finishing child
/// within the window is on the path; the stretch between the chosen child's
/// end and the current cursor is the parent's own work.
void WalkCritical(const Tree& tree, const Span* s, Nanos t0, Nanos t1,
                  size_t depth, std::vector<CritSegment>* out) {
  if (t1 <= t0) return;
  auto it = tree.children.find(s->id);
  Nanos cursor = t1;
  if (it != tree.children.end()) {
    // Children sorted by end descending; repeatedly take the latest-ending
    // child that fits below the cursor.
    std::vector<const Span*> kids = it->second;
    std::sort(kids.begin(), kids.end(), [](const Span* a, const Span* b) {
      if (a->end != b->end) return a->end > b->end;
      return a->id > b->id;
    });
    for (const Span* c : kids) {
      if (cursor <= t0) break;
      Nanos c_end = std::min(c->end, cursor);
      Nanos c_start = std::max(c->start, t0);
      if (c_end <= c_start || c_end <= t0) continue;
      if (c->start >= cursor) continue;  // fully above the cursor: off-path
      if (c_end < cursor) {
        // Gap no child covers: the parent itself is the bottleneck there.
        out->push_back({s->id, s->name, s->node, c_end, cursor, depth});
      }
      WalkCritical(tree, c, c_start, c_end, depth + 1, out);
      cursor = c_start;
    }
  }
  if (cursor > t0) {
    out->push_back({s->id, s->name, s->node, t0, cursor, depth});
  }
}

}  // namespace

CriticalPath CriticalPath::Analyze(const std::vector<Span>& spans,
                                   uint64_t root_id) {
  CriticalPath cp;
  Tree tree;
  for (const Span& s : spans) {
    tree.by_id.emplace(s.id, &s);
    if (s.parent != kNoSpan) tree.children[s.parent].push_back(&s);
  }
  const Span* root = nullptr;
  if (root_id != kNoSpan) {
    auto it = tree.by_id.find(root_id);
    if (it != tree.by_id.end()) root = it->second;
  } else {
    for (const Span& s : spans) {
      if (s.parent != kNoSpan) continue;
      if (root == nullptr || (s.end - s.start) > (root->end - root->start)) {
        root = &s;
      }
    }
  }
  if (root == nullptr || root->end <= root->start) return cp;

  cp.root_ = root->id;
  cp.total_ = root->end - root->start;
  WalkCritical(tree, root, root->start, root->end, 0, &cp.segments_);
  std::reverse(cp.segments_.begin(), cp.segments_.end());

  for (const Span& s : spans) {
    if (s.parent == kNoSpan) continue;
    auto it = tree.by_id.find(s.parent);
    if (it == tree.by_id.end()) continue;
    Nanos parent_end = it->second->end;
    cp.slack_[s.id] = parent_end > s.end ? parent_end - s.end : 0;
  }
  return cp;
}

std::vector<std::pair<std::string, Nanos>> CriticalPath::Attribution() const {
  std::map<std::string, Nanos> by_name;
  for (const CritSegment& seg : segments_) {
    by_name[seg.name] += seg.duration();
  }
  std::vector<std::pair<std::string, Nanos>> out(by_name.begin(),
                                                 by_name.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string CriticalPath::Render(size_t max_segments) const {
  std::string out;
  char line[256];
  if (!valid()) return "critical path: no completed root span\n";
  std::snprintf(line, sizeof(line),
                "critical path: span %llu, %.3f ms over %zu segments\n",
                static_cast<unsigned long long>(root_),
                static_cast<double>(total_) / 1e6, segments_.size());
  out += line;
  size_t shown = 0;
  for (const CritSegment& seg : segments_) {
    if (max_segments > 0 && shown >= max_segments) break;
    std::snprintf(line, sizeof(line), "  %10.3f..%10.3f us  %*s%s\n",
                  static_cast<double>(seg.start) / 1e3,
                  static_cast<double>(seg.end) / 1e3,
                  static_cast<int>(seg.depth * 2), "", seg.name.c_str());
    out += line;
    ++shown;
  }
  if (max_segments > 0 && segments_.size() > max_segments) {
    std::snprintf(line, sizeof(line), "  ... %zu more segments\n",
                  segments_.size() - max_segments);
    out += line;
  }
  out += "attribution (path time by span name):\n";
  for (const auto& [name, ns] : Attribution()) {
    std::snprintf(line, sizeof(line), "  %10.3f us  %5.1f%%  %s\n",
                  static_cast<double>(ns) / 1e3,
                  100.0 * static_cast<double>(ns) /
                      static_cast<double>(total_),
                  name.c_str());
    out += line;
  }
  return out;
}

}  // namespace diesel::obs
