// Span-tree critical-path analyzer.
//
// Given a completed span tree, finds the chain of spans that actually
// determines the root's end time — at every level, the last-finishing child
// is on the path; gaps no child covers are the parent's own work — and
// computes per-span slack: how much a span could lengthen before it pushes
// its parent's completion (slack 0 means "on the critical chain of its
// parent"). Path segments are attributed to the resource named by the span
// ("rpc:node0->node15" -> that link, "server.read_chunk" -> the server
// service device), so the longest path through an epoch reads as an ordered
// list of resource charges (`dlcmd critpath`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/trace.h"

namespace diesel::obs {

/// One stretch of the critical path, attributed to a span (and through the
/// span's name, to a resource).
struct CritSegment {
  uint64_t span_id = kNoSpan;
  std::string name;
  uint32_t node = kNoNode;
  Nanos start = 0;
  Nanos end = 0;
  size_t depth = 0;  // tree depth of the owning span (root = 0)

  Nanos duration() const { return end - start; }
};

class CriticalPath {
 public:
  /// Analyze the tree under `root_id`; `root_id == kNoSpan` picks the
  /// longest-duration root span in the tracer.
  static CriticalPath Analyze(const std::vector<Span>& spans,
                              uint64_t root_id = kNoSpan);
  static CriticalPath Analyze(const Tracer& tracer,
                              uint64_t root_id = kNoSpan) {
    return Analyze(tracer.spans(), root_id);
  }

  bool valid() const { return root_ != kNoSpan; }
  uint64_t root() const { return root_; }
  Nanos total() const { return total_; }

  /// Path segments ordered by start time; their durations sum to total().
  const std::vector<CritSegment>& segments() const { return segments_; }

  /// Per-span slack: max(0, parent_end - span_end) — how much the span can
  /// stretch before it moves its parent's completion. Spans ending exactly
  /// when their parent ends (the critical chain) have slack 0.
  const std::map<uint64_t, Nanos>& slack() const { return slack_; }

  /// Path time grouped by span name (resource attribution), largest first.
  std::vector<std::pair<std::string, Nanos>> Attribution() const;

  std::string Render(size_t max_segments = 0) const;

 private:
  uint64_t root_ = kNoSpan;
  Nanos total_ = 0;
  std::vector<CritSegment> segments_;
  std::map<uint64_t, Nanos> slack_;
};

}  // namespace diesel::obs
