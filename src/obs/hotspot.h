// Hotspot ranking with queueing-delay attribution.
//
// Takes an obs::ClusterView plus the read-path phase histograms
// (read.path.{owner_wait,device,rpc}_ns) and ranks resources by utilization
// and by how much queueing delay they contribute, with a Little's-law
// cross-check per resource:
//
//   expected_wait = util / (1 - util) * mean_service     (M/M/1-style)
//
// A resource whose observed mean queue wait tracks the expected value is a
// genuine saturation hotspot; a large observed wait with low utilization
// points at bursty arrivals instead. The report also apportions the
// end-to-end read phases to resource kinds so "where did the epoch's time
// go" and "which box is hot" land in one view (`dlcmd hotspots`).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/cluster_view.h"

namespace diesel::obs {

struct HotspotEntry {
  ResourceUtil resource;
  double total_queue_wait_ns = 0.0;  // ops * mean wait: delay contributed
  double expected_wait_ns = 0.0;     // Little's-law prediction (0 if util>=1)
  double wait_ratio = 0.0;           // observed / expected (0 if undefined)
};

/// End-to-end read-path phase totals (sums over the phase histograms).
struct PhaseTotals {
  double total_ns = 0.0;
  double owner_wait_ns = 0.0;
  double device_ns = 0.0;
  double rpc_ns = 0.0;
};

class HotspotReport {
 public:
  /// Build from a computed view plus the registry the view came from (for
  /// the read.path.* phase sums). Either frontend of ClusterView works; pass
  /// the matching snapshot/JSON.
  static HotspotReport Build(const ClusterView& view,
                             const MetricsSnapshot& snap);
  static Result<HotspotReport> FromRegistryJson(const ClusterView& view,
                                                const JsonValue& registry);

  /// Entries ranked by utilization (busiest first), queue-wait contribution
  /// breaking ties.
  const std::vector<HotspotEntry>& entries() const { return entries_; }
  const PhaseTotals& phases() const { return phases_; }
  const ImbalanceStats& imbalance() const { return imbalance_; }

  /// The top-ranked resource ("" when the view is empty).
  std::string top_resource() const {
    return entries_.empty() ? "" : entries_.front().resource.name;
  }

  std::string Render(size_t top_n = 10) const;

 private:
  static HotspotReport BuildImpl(const ClusterView& view, PhaseTotals phases);

  std::vector<HotspotEntry> entries_;
  PhaseTotals phases_;
  ImbalanceStats imbalance_;
};

/// `dlcmd util` entry point:
///   util <report.json> [--window ns] [--top N]
/// Loads a bench report (or bare registry dump), derives per-resource and
/// per-node utilization, prints the table. Exits non-zero on parse errors or
/// any non-finite / out-of-[0,1] utilization value — the CI hotspot-smoke
/// contract.
int UtilCommand(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// `dlcmd hotspots` entry point:
///   hotspots <report.json> [--window ns] [--top N]
/// Same input; prints the hotspot ranking with queueing-delay attribution
/// and the read-path phase split. Same exit contract as `util`.
int HotspotsCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace diesel::obs
