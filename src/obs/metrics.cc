#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace diesel::obs {
namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Metric keys are built from identifiers we control, but quote/backslash
/// still must not break the JSON framing.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Gauge::Set(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ = v;
}

void Gauge::Add(double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ += delta;
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return value_;
}

void Gauge::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ = 0.0;
}

void Histo::Observe(double v, uint64_t trace_id, double at) {
  std::lock_guard<std::mutex> lock(mutex_);
  hist_.AddWithExemplar(v, trace_id, at);
}

void Histo::SetExemplarQuantile(double q) {
  std::lock_guard<std::mutex> lock(mutex_);
  hist_.SetExemplarQuantile(q);
}

void Histo::Observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  hist_.Add(v);
}

Histogram Histo::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hist_;
}

void Histo::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  hist_.Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked singleton: subsystems cache references into it, and static
  // destruction order must never invalidate them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += "}";
  return key;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::string key = Key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::string key = Key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histo& MetricsRegistry::GetHistogram(const std::string& name,
                                     const Labels& labels) {
  std::string key = Key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histo>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, c] : counters_) snap.counters[key] = c->value();
  for (const auto& [key, g] : gauges_) snap.gauges[key] = g->value();
  for (const auto& [key, h] : histograms_) snap.histograms[key] = h->Snapshot();
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, g] : gauges_) g->Reset();
  for (auto& [key, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [key, v] : counters) {
    auto it = earlier.counters.find(key);
    uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[key] = v >= base ? v - base : 0;
  }
  for (const auto& [key, v] : gauges) {
    auto it = earlier.gauges.find(key);
    delta.gauges[key] = it == earlier.gauges.end() ? v : v - it->second;
  }
  for (const auto& [key, h] : histograms) {
    auto it = earlier.histograms.find(key);
    delta.histograms[key] =
        it == earlier.histograms.end() ? h : h.DeltaSince(it->second);
  }
  return delta;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [key, v] : other.counters) counters[key] += v;
  for (const auto& [key, v] : other.gauges) gauges[key] += v;
  for (const auto& [key, h] : other.histograms) histograms[key].Merge(h);
}

uint64_t MetricsSnapshot::SumCounters(const std::string& prefix) const {
  uint64_t sum = 0;
  for (auto it = counters.lower_bound(prefix);
       it != counters.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    sum += it->second;
  }
  return sum;
}

std::string MetricsSnapshot::Text() const {
  std::string out;
  for (const auto& [key, v] : counters) {
    out += key + " = " + std::to_string(v) + "\n";
  }
  for (const auto& [key, v] : gauges) {
    out += key + " = " + FmtDouble(v) + "\n";
  }
  for (const auto& [key, h] : histograms) {
    out += key + " : " + h.Summary() + "\n";
  }
  return out;
}

std::string MetricsSnapshot::Json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(key) + "\": " + std::to_string(v);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [key, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(key) + "\": " + FmtDouble(v);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [key, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(key) + "\": " + h.SummaryJson();
    first = false;
  }
  out += "\n  }\n}";
  return out;
}

}  // namespace diesel::obs
