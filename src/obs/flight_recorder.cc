#include "obs/flight_recorder.h"

#include <fstream>

#include "obs/trace.h"

namespace diesel::obs {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

uint8_t KindBit(FlightEventKind kind) {
  return static_cast<uint8_t>(1u << static_cast<uint8_t>(kind));
}

}  // namespace

const char* ToString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kBreaker: return "breaker";
    case FlightEventKind::kMembership: return "membership";
    case FlightEventKind::kMigration: return "migration";
    case FlightEventKind::kChaos: return "chaos";
    case FlightEventKind::kInfo: return "info";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t event_capacity, size_t span_capacity)
    : event_capacity_(event_capacity), span_capacity_(span_capacity) {}

FlightRecorder& FlightRecorder::Default() {
  // Leaked: subsystems record from static-destructor-unsafe contexts.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(FlightEventKind kind, Nanos at, std::string what,
                            uint64_t span) {
  std::string dump_path, dump_json;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FlightEvent ev;
    ev.seq = ++event_seq_;
    ev.at = at;
    ev.kind = kind;
    ev.what = std::move(what);
    ev.span = span;
    events_.push_back(std::move(ev));
    if (events_.size() > event_capacity_) {
      events_.erase(events_.begin(),
                    events_.begin() +
                        static_cast<long>(events_.size() - event_capacity_));
    }
    if (!auto_dump_path_.empty() && (auto_dump_mask_ & KindBit(kind)) != 0) {
      dump_path = auto_dump_path_;
      dump_json = JsonLocked();
    }
  }
  if (!dump_path.empty()) {
    // Best effort, outside the lock; the recorder must never fail the
    // workload it is observing.
    std::ofstream out(dump_path, std::ios::binary | std::ios::trunc);
    if (out) out << dump_json;
  }
}

void FlightRecorder::RecordSpan(const Span& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord rec;
  rec.seq = ++span_seq_;
  rec.id = span.id;
  rec.parent = span.parent;
  rec.name = span.name;
  rec.node = span.node;
  rec.start = span.start;
  rec.end = span.end;
  rec.notes = span.notes.size();
  spans_.push_back(std::move(rec));
  if (spans_.size() > span_capacity_) {
    spans_.erase(spans_.begin(),
                 spans_.begin() +
                     static_cast<long>(spans_.size() - span_capacity_));
  }
}

void FlightRecorder::ArmAutoDump(std::string path,
                                 std::initializer_list<FlightEventKind> kinds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto_dump_path_ = std::move(path);
  auto_dump_mask_ = 0;
  for (FlightEventKind k : kinds) auto_dump_mask_ |= KindBit(k);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

uint64_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return event_seq_;
}

uint64_t FlightRecorder::spans_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return span_seq_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  spans_.clear();
  event_seq_ = 0;
  span_seq_ = 0;
}

std::string FlightRecorder::JsonLocked() const {
  std::string out = "{\n  \"schema\": \"diesel.flightrec/v1\",\n";
  out += "  \"events_recorded\": " + std::to_string(event_seq_) + ",\n";
  out += "  \"spans_recorded\": " + std::to_string(span_seq_) + ",\n";
  out += "  \"events\": [";
  for (size_t i = 0; i < events_.size(); ++i) {
    const FlightEvent& ev = events_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seq\": " + std::to_string(ev.seq) +
           ", \"at\": " + std::to_string(ev.at) + ", \"kind\": \"" +
           ToString(ev.kind) + "\", \"what\": \"" + JsonEscape(ev.what) + "\"";
    if (ev.span != 0) out += ", \"span\": " + std::to_string(ev.span);
    out += "}";
  }
  out += "\n  ],\n  \"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seq\": " + std::to_string(s.seq) +
           ", \"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           JsonEscape(s.name) + "\", \"node\": " +
           (s.node == static_cast<uint32_t>(-1)
                ? std::string("-1")
                : std::to_string(s.node)) +
           ", \"start\": " + std::to_string(s.start) +
           ", \"end\": " + std::to_string(s.end) +
           ", \"notes\": " + std::to_string(s.notes) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string FlightRecorder::Json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return JsonLocked();
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  std::string json = Json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("flight recorder: cannot open " + path);
  out << json;
  out.flush();
  if (!out) return Status::IoError("flight recorder: write failed: " + path);
  return Status::Ok();
}

}  // namespace diesel::obs
