
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auth.cc" "src/core/CMakeFiles/diesel_core.dir/auth.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/auth.cc.o.d"
  "/root/repo/src/core/chunk_format.cc" "src/core/CMakeFiles/diesel_core.dir/chunk_format.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/chunk_format.cc.o.d"
  "/root/repo/src/core/chunk_id.cc" "src/core/CMakeFiles/diesel_core.dir/chunk_id.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/chunk_id.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/diesel_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/client.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/diesel_core.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/deployment.cc.o.d"
  "/root/repo/src/core/housekeeping.cc" "src/core/CMakeFiles/diesel_core.dir/housekeeping.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/housekeeping.cc.o.d"
  "/root/repo/src/core/metadata.cc" "src/core/CMakeFiles/diesel_core.dir/metadata.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/metadata.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/diesel_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/server.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/diesel_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/diesel_core.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/etcd/CMakeFiles/diesel_etcd.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/diesel_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/ostore/CMakeFiles/diesel_ostore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diesel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diesel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diesel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
