file(REMOVE_RECURSE
  "libdiesel_core.a"
)
