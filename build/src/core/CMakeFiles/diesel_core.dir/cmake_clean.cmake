file(REMOVE_RECURSE
  "CMakeFiles/diesel_core.dir/auth.cc.o"
  "CMakeFiles/diesel_core.dir/auth.cc.o.d"
  "CMakeFiles/diesel_core.dir/chunk_format.cc.o"
  "CMakeFiles/diesel_core.dir/chunk_format.cc.o.d"
  "CMakeFiles/diesel_core.dir/chunk_id.cc.o"
  "CMakeFiles/diesel_core.dir/chunk_id.cc.o.d"
  "CMakeFiles/diesel_core.dir/client.cc.o"
  "CMakeFiles/diesel_core.dir/client.cc.o.d"
  "CMakeFiles/diesel_core.dir/deployment.cc.o"
  "CMakeFiles/diesel_core.dir/deployment.cc.o.d"
  "CMakeFiles/diesel_core.dir/housekeeping.cc.o"
  "CMakeFiles/diesel_core.dir/housekeeping.cc.o.d"
  "CMakeFiles/diesel_core.dir/metadata.cc.o"
  "CMakeFiles/diesel_core.dir/metadata.cc.o.d"
  "CMakeFiles/diesel_core.dir/server.cc.o"
  "CMakeFiles/diesel_core.dir/server.cc.o.d"
  "CMakeFiles/diesel_core.dir/snapshot.cc.o"
  "CMakeFiles/diesel_core.dir/snapshot.cc.o.d"
  "libdiesel_core.a"
  "libdiesel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
