# Empty dependencies file for diesel_core.
# This may be replaced when dependencies are built.
