file(REMOVE_RECURSE
  "libdiesel_ostore.a"
)
