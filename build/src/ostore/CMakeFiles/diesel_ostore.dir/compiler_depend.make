# Empty compiler generated dependencies file for diesel_ostore.
# This may be replaced when dependencies are built.
