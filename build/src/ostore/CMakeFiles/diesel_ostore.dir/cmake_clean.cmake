file(REMOVE_RECURSE
  "CMakeFiles/diesel_ostore.dir/dir_store.cc.o"
  "CMakeFiles/diesel_ostore.dir/dir_store.cc.o.d"
  "CMakeFiles/diesel_ostore.dir/mem_store.cc.o"
  "CMakeFiles/diesel_ostore.dir/mem_store.cc.o.d"
  "CMakeFiles/diesel_ostore.dir/modeled_store.cc.o"
  "CMakeFiles/diesel_ostore.dir/modeled_store.cc.o.d"
  "CMakeFiles/diesel_ostore.dir/striped_store.cc.o"
  "CMakeFiles/diesel_ostore.dir/striped_store.cc.o.d"
  "CMakeFiles/diesel_ostore.dir/tiered_store.cc.o"
  "CMakeFiles/diesel_ostore.dir/tiered_store.cc.o.d"
  "libdiesel_ostore.a"
  "libdiesel_ostore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_ostore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
