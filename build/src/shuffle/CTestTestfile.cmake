# CMake generated Testfile for 
# Source directory: /root/repo/src/shuffle
# Build directory: /root/repo/build/src/shuffle
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
