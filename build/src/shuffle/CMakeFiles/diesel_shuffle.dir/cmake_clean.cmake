file(REMOVE_RECURSE
  "CMakeFiles/diesel_shuffle.dir/group_reader.cc.o"
  "CMakeFiles/diesel_shuffle.dir/group_reader.cc.o.d"
  "CMakeFiles/diesel_shuffle.dir/shuffle.cc.o"
  "CMakeFiles/diesel_shuffle.dir/shuffle.cc.o.d"
  "libdiesel_shuffle.a"
  "libdiesel_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
