
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shuffle/group_reader.cc" "src/shuffle/CMakeFiles/diesel_shuffle.dir/group_reader.cc.o" "gcc" "src/shuffle/CMakeFiles/diesel_shuffle.dir/group_reader.cc.o.d"
  "/root/repo/src/shuffle/shuffle.cc" "src/shuffle/CMakeFiles/diesel_shuffle.dir/shuffle.cc.o" "gcc" "src/shuffle/CMakeFiles/diesel_shuffle.dir/shuffle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diesel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diesel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/etcd/CMakeFiles/diesel_etcd.dir/DependInfo.cmake"
  "/root/repo/build/src/ostore/CMakeFiles/diesel_ostore.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/diesel_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diesel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diesel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
