file(REMOVE_RECURSE
  "libdiesel_shuffle.a"
)
