# Empty dependencies file for diesel_shuffle.
# This may be replaced when dependencies are built.
