# Empty dependencies file for diesel_common.
# This may be replaced when dependencies are built.
