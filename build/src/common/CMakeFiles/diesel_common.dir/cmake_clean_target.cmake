file(REMOVE_RECURSE
  "libdiesel_common.a"
)
