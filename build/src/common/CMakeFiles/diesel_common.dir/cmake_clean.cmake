file(REMOVE_RECURSE
  "CMakeFiles/diesel_common.dir/base64lex.cc.o"
  "CMakeFiles/diesel_common.dir/base64lex.cc.o.d"
  "CMakeFiles/diesel_common.dir/crc32.cc.o"
  "CMakeFiles/diesel_common.dir/crc32.cc.o.d"
  "CMakeFiles/diesel_common.dir/histogram.cc.o"
  "CMakeFiles/diesel_common.dir/histogram.cc.o.d"
  "CMakeFiles/diesel_common.dir/log.cc.o"
  "CMakeFiles/diesel_common.dir/log.cc.o.d"
  "CMakeFiles/diesel_common.dir/rng.cc.o"
  "CMakeFiles/diesel_common.dir/rng.cc.o.d"
  "CMakeFiles/diesel_common.dir/status.cc.o"
  "CMakeFiles/diesel_common.dir/status.cc.o.d"
  "CMakeFiles/diesel_common.dir/thread_pool.cc.o"
  "CMakeFiles/diesel_common.dir/thread_pool.cc.o.d"
  "libdiesel_common.a"
  "libdiesel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
