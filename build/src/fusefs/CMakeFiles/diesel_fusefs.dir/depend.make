# Empty dependencies file for diesel_fusefs.
# This may be replaced when dependencies are built.
