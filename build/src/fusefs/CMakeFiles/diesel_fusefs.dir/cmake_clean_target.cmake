file(REMOVE_RECURSE
  "libdiesel_fusefs.a"
)
