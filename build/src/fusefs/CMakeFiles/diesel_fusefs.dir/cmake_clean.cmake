file(REMOVE_RECURSE
  "CMakeFiles/diesel_fusefs.dir/fusefs.cc.o"
  "CMakeFiles/diesel_fusefs.dir/fusefs.cc.o.d"
  "CMakeFiles/diesel_fusefs.dir/localfs.cc.o"
  "CMakeFiles/diesel_fusefs.dir/localfs.cc.o.d"
  "CMakeFiles/diesel_fusefs.dir/mount_manager.cc.o"
  "CMakeFiles/diesel_fusefs.dir/mount_manager.cc.o.d"
  "CMakeFiles/diesel_fusefs.dir/walker.cc.o"
  "CMakeFiles/diesel_fusefs.dir/walker.cc.o.d"
  "libdiesel_fusefs.a"
  "libdiesel_fusefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_fusefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
