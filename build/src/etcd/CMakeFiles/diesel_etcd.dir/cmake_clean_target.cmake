file(REMOVE_RECURSE
  "libdiesel_etcd.a"
)
