# Empty dependencies file for diesel_etcd.
# This may be replaced when dependencies are built.
