file(REMOVE_RECURSE
  "CMakeFiles/diesel_etcd.dir/config_store.cc.o"
  "CMakeFiles/diesel_etcd.dir/config_store.cc.o.d"
  "libdiesel_etcd.a"
  "libdiesel_etcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_etcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
