# Empty compiler generated dependencies file for diesel_sim.
# This may be replaced when dependencies are built.
