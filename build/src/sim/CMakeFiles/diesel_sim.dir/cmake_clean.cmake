file(REMOVE_RECURSE
  "CMakeFiles/diesel_sim.dir/device.cc.o"
  "CMakeFiles/diesel_sim.dir/device.cc.o.d"
  "libdiesel_sim.a"
  "libdiesel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
