file(REMOVE_RECURSE
  "libdiesel_sim.a"
)
