file(REMOVE_RECURSE
  "libdiesel_kv.a"
)
