# Empty compiler generated dependencies file for diesel_kv.
# This may be replaced when dependencies are built.
