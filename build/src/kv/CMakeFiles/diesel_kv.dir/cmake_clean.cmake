file(REMOVE_RECURSE
  "CMakeFiles/diesel_kv.dir/cluster.cc.o"
  "CMakeFiles/diesel_kv.dir/cluster.cc.o.d"
  "CMakeFiles/diesel_kv.dir/ring.cc.o"
  "CMakeFiles/diesel_kv.dir/ring.cc.o.d"
  "CMakeFiles/diesel_kv.dir/shard.cc.o"
  "CMakeFiles/diesel_kv.dir/shard.cc.o.d"
  "libdiesel_kv.a"
  "libdiesel_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
