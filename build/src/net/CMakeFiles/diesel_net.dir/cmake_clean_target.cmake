file(REMOVE_RECURSE
  "libdiesel_net.a"
)
