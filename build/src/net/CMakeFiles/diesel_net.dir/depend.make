# Empty dependencies file for diesel_net.
# This may be replaced when dependencies are built.
