file(REMOVE_RECURSE
  "CMakeFiles/diesel_net.dir/fabric.cc.o"
  "CMakeFiles/diesel_net.dir/fabric.cc.o.d"
  "libdiesel_net.a"
  "libdiesel_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
