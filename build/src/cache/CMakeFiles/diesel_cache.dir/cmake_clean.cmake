file(REMOVE_RECURSE
  "CMakeFiles/diesel_cache.dir/registry.cc.o"
  "CMakeFiles/diesel_cache.dir/registry.cc.o.d"
  "CMakeFiles/diesel_cache.dir/task_cache.cc.o"
  "CMakeFiles/diesel_cache.dir/task_cache.cc.o.d"
  "libdiesel_cache.a"
  "libdiesel_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
