# Empty compiler generated dependencies file for diesel_cache.
# This may be replaced when dependencies are built.
