file(REMOVE_RECURSE
  "libdiesel_cache.a"
)
