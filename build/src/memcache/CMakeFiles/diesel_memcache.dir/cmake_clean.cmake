file(REMOVE_RECURSE
  "CMakeFiles/diesel_memcache.dir/memcache.cc.o"
  "CMakeFiles/diesel_memcache.dir/memcache.cc.o.d"
  "libdiesel_memcache.a"
  "libdiesel_memcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_memcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
