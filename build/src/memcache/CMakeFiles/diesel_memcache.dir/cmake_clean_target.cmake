file(REMOVE_RECURSE
  "libdiesel_memcache.a"
)
