# Empty dependencies file for diesel_memcache.
# This may be replaced when dependencies are built.
