
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memcache/memcache.cc" "src/memcache/CMakeFiles/diesel_memcache.dir/memcache.cc.o" "gcc" "src/memcache/CMakeFiles/diesel_memcache.dir/memcache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kv/CMakeFiles/diesel_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diesel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diesel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diesel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
