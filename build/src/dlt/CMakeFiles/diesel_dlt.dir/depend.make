# Empty dependencies file for diesel_dlt.
# This may be replaced when dependencies are built.
