file(REMOVE_RECURSE
  "CMakeFiles/diesel_dlt.dir/dataset_gen.cc.o"
  "CMakeFiles/diesel_dlt.dir/dataset_gen.cc.o.d"
  "CMakeFiles/diesel_dlt.dir/distributed_task.cc.o"
  "CMakeFiles/diesel_dlt.dir/distributed_task.cc.o.d"
  "CMakeFiles/diesel_dlt.dir/mlp.cc.o"
  "CMakeFiles/diesel_dlt.dir/mlp.cc.o.d"
  "CMakeFiles/diesel_dlt.dir/pipeline.cc.o"
  "CMakeFiles/diesel_dlt.dir/pipeline.cc.o.d"
  "CMakeFiles/diesel_dlt.dir/trainer.cc.o"
  "CMakeFiles/diesel_dlt.dir/trainer.cc.o.d"
  "libdiesel_dlt.a"
  "libdiesel_dlt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_dlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
