file(REMOVE_RECURSE
  "libdiesel_dlt.a"
)
