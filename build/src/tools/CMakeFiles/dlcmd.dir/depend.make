# Empty dependencies file for dlcmd.
# This may be replaced when dependencies are built.
