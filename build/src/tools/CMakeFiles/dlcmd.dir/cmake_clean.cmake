file(REMOVE_RECURSE
  "CMakeFiles/dlcmd.dir/dlcmd.cc.o"
  "CMakeFiles/dlcmd.dir/dlcmd.cc.o.d"
  "dlcmd"
  "dlcmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlcmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
