file(REMOVE_RECURSE
  "CMakeFiles/diesel_lustre.dir/lustre.cc.o"
  "CMakeFiles/diesel_lustre.dir/lustre.cc.o.d"
  "libdiesel_lustre.a"
  "libdiesel_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diesel_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
