# Empty compiler generated dependencies file for diesel_lustre.
# This may be replaced when dependencies are built.
