file(REMOVE_RECURSE
  "libdiesel_lustre.a"
)
