file(REMOVE_RECURSE
  "CMakeFiles/dataset_management.dir/dataset_management.cpp.o"
  "CMakeFiles/dataset_management.dir/dataset_management.cpp.o.d"
  "dataset_management"
  "dataset_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
