# Empty dependencies file for dataset_management.
# This may be replaced when dependencies are built.
