file(REMOVE_RECURSE
  "CMakeFiles/kv_ring_test.dir/kv/ring_test.cc.o"
  "CMakeFiles/kv_ring_test.dir/kv/ring_test.cc.o.d"
  "kv_ring_test"
  "kv_ring_test.pdb"
  "kv_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
