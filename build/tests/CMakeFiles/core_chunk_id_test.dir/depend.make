# Empty dependencies file for core_chunk_id_test.
# This may be replaced when dependencies are built.
