file(REMOVE_RECURSE
  "CMakeFiles/core_chunk_id_test.dir/core/chunk_id_test.cc.o"
  "CMakeFiles/core_chunk_id_test.dir/core/chunk_id_test.cc.o.d"
  "core_chunk_id_test"
  "core_chunk_id_test.pdb"
  "core_chunk_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_chunk_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
