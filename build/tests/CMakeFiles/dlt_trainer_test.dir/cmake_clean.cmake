file(REMOVE_RECURSE
  "CMakeFiles/dlt_trainer_test.dir/dlt/trainer_test.cc.o"
  "CMakeFiles/dlt_trainer_test.dir/dlt/trainer_test.cc.o.d"
  "dlt_trainer_test"
  "dlt_trainer_test.pdb"
  "dlt_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
