file(REMOVE_RECURSE
  "CMakeFiles/integration_shuffle_accuracy_test.dir/integration/shuffle_accuracy_test.cc.o"
  "CMakeFiles/integration_shuffle_accuracy_test.dir/integration/shuffle_accuracy_test.cc.o.d"
  "integration_shuffle_accuracy_test"
  "integration_shuffle_accuracy_test.pdb"
  "integration_shuffle_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_shuffle_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
