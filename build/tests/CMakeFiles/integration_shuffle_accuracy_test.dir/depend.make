# Empty dependencies file for integration_shuffle_accuracy_test.
# This may be replaced when dependencies are built.
