# Empty compiler generated dependencies file for dlt_dataset_gen_test.
# This may be replaced when dependencies are built.
