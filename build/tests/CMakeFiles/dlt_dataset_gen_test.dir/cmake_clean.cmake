file(REMOVE_RECURSE
  "CMakeFiles/dlt_dataset_gen_test.dir/dlt/dataset_gen_test.cc.o"
  "CMakeFiles/dlt_dataset_gen_test.dir/dlt/dataset_gen_test.cc.o.d"
  "dlt_dataset_gen_test"
  "dlt_dataset_gen_test.pdb"
  "dlt_dataset_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_dataset_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
