# Empty dependencies file for shuffle_group_reader_test.
# This may be replaced when dependencies are built.
