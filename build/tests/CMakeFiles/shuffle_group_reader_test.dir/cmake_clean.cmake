file(REMOVE_RECURSE
  "CMakeFiles/shuffle_group_reader_test.dir/shuffle/group_reader_test.cc.o"
  "CMakeFiles/shuffle_group_reader_test.dir/shuffle/group_reader_test.cc.o.d"
  "shuffle_group_reader_test"
  "shuffle_group_reader_test.pdb"
  "shuffle_group_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_group_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
