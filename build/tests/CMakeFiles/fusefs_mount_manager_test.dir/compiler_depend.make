# Empty compiler generated dependencies file for fusefs_mount_manager_test.
# This may be replaced when dependencies are built.
