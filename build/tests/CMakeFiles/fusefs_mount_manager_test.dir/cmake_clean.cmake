file(REMOVE_RECURSE
  "CMakeFiles/fusefs_mount_manager_test.dir/fusefs/mount_manager_test.cc.o"
  "CMakeFiles/fusefs_mount_manager_test.dir/fusefs/mount_manager_test.cc.o.d"
  "fusefs_mount_manager_test"
  "fusefs_mount_manager_test.pdb"
  "fusefs_mount_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusefs_mount_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
