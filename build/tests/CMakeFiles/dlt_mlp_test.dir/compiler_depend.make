# Empty compiler generated dependencies file for dlt_mlp_test.
# This may be replaced when dependencies are built.
