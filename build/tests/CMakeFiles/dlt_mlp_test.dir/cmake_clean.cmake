file(REMOVE_RECURSE
  "CMakeFiles/dlt_mlp_test.dir/dlt/mlp_test.cc.o"
  "CMakeFiles/dlt_mlp_test.dir/dlt/mlp_test.cc.o.d"
  "dlt_mlp_test"
  "dlt_mlp_test.pdb"
  "dlt_mlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
