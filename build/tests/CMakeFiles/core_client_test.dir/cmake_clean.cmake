file(REMOVE_RECURSE
  "CMakeFiles/core_client_test.dir/core/client_test.cc.o"
  "CMakeFiles/core_client_test.dir/core/client_test.cc.o.d"
  "core_client_test"
  "core_client_test.pdb"
  "core_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
