# Empty compiler generated dependencies file for core_client_test.
# This may be replaced when dependencies are built.
