# Empty dependencies file for concurrency_parallel_clients_test.
# This may be replaced when dependencies are built.
