file(REMOVE_RECURSE
  "CMakeFiles/concurrency_parallel_clients_test.dir/concurrency/parallel_clients_test.cc.o"
  "CMakeFiles/concurrency_parallel_clients_test.dir/concurrency/parallel_clients_test.cc.o.d"
  "concurrency_parallel_clients_test"
  "concurrency_parallel_clients_test.pdb"
  "concurrency_parallel_clients_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_parallel_clients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
