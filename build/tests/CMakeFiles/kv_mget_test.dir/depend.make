# Empty dependencies file for kv_mget_test.
# This may be replaced when dependencies are built.
