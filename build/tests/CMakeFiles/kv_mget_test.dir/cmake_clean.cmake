file(REMOVE_RECURSE
  "CMakeFiles/kv_mget_test.dir/kv/mget_test.cc.o"
  "CMakeFiles/kv_mget_test.dir/kv/mget_test.cc.o.d"
  "kv_mget_test"
  "kv_mget_test.pdb"
  "kv_mget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_mget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
