# Empty compiler generated dependencies file for core_scrub_test.
# This may be replaced when dependencies are built.
