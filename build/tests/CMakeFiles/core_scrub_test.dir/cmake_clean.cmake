file(REMOVE_RECURSE
  "CMakeFiles/core_scrub_test.dir/core/scrub_test.cc.o"
  "CMakeFiles/core_scrub_test.dir/core/scrub_test.cc.o.d"
  "core_scrub_test"
  "core_scrub_test.pdb"
  "core_scrub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scrub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
