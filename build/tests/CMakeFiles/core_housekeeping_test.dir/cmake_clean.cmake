file(REMOVE_RECURSE
  "CMakeFiles/core_housekeeping_test.dir/core/housekeeping_test.cc.o"
  "CMakeFiles/core_housekeeping_test.dir/core/housekeeping_test.cc.o.d"
  "core_housekeeping_test"
  "core_housekeeping_test.pdb"
  "core_housekeeping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_housekeeping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
