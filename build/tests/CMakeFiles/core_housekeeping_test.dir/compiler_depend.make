# Empty compiler generated dependencies file for core_housekeeping_test.
# This may be replaced when dependencies are built.
