file(REMOVE_RECURSE
  "CMakeFiles/fusefs_fuse_write_shuffle_test.dir/fusefs/fuse_write_shuffle_test.cc.o"
  "CMakeFiles/fusefs_fuse_write_shuffle_test.dir/fusefs/fuse_write_shuffle_test.cc.o.d"
  "fusefs_fuse_write_shuffle_test"
  "fusefs_fuse_write_shuffle_test.pdb"
  "fusefs_fuse_write_shuffle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusefs_fuse_write_shuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
