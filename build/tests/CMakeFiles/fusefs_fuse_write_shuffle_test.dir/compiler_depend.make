# Empty compiler generated dependencies file for fusefs_fuse_write_shuffle_test.
# This may be replaced when dependencies are built.
