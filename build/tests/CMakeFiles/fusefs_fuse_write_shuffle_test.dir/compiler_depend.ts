# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fusefs_fuse_write_shuffle_test.
