file(REMOVE_RECURSE
  "CMakeFiles/lustre_lustre_test.dir/lustre/lustre_test.cc.o"
  "CMakeFiles/lustre_lustre_test.dir/lustre/lustre_test.cc.o.d"
  "lustre_lustre_test"
  "lustre_lustre_test.pdb"
  "lustre_lustre_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lustre_lustre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
