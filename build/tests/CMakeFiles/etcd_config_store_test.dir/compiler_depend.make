# Empty compiler generated dependencies file for etcd_config_store_test.
# This may be replaced when dependencies are built.
