file(REMOVE_RECURSE
  "CMakeFiles/etcd_config_store_test.dir/etcd/config_store_test.cc.o"
  "CMakeFiles/etcd_config_store_test.dir/etcd/config_store_test.cc.o.d"
  "etcd_config_store_test"
  "etcd_config_store_test.pdb"
  "etcd_config_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcd_config_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
