# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for etcd_config_store_test.
