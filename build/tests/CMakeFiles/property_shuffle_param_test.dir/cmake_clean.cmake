file(REMOVE_RECURSE
  "CMakeFiles/property_shuffle_param_test.dir/property/shuffle_param_test.cc.o"
  "CMakeFiles/property_shuffle_param_test.dir/property/shuffle_param_test.cc.o.d"
  "property_shuffle_param_test"
  "property_shuffle_param_test.pdb"
  "property_shuffle_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_shuffle_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
