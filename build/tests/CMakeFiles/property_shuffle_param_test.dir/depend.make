# Empty dependencies file for property_shuffle_param_test.
# This may be replaced when dependencies are built.
