file(REMOVE_RECURSE
  "CMakeFiles/kv_cluster_test.dir/kv/cluster_test.cc.o"
  "CMakeFiles/kv_cluster_test.dir/kv/cluster_test.cc.o.d"
  "kv_cluster_test"
  "kv_cluster_test.pdb"
  "kv_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
