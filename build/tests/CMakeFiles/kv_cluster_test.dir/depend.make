# Empty dependencies file for kv_cluster_test.
# This may be replaced when dependencies are built.
