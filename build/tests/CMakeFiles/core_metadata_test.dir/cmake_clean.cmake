file(REMOVE_RECURSE
  "CMakeFiles/core_metadata_test.dir/core/metadata_test.cc.o"
  "CMakeFiles/core_metadata_test.dir/core/metadata_test.cc.o.d"
  "core_metadata_test"
  "core_metadata_test.pdb"
  "core_metadata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
