file(REMOVE_RECURSE
  "CMakeFiles/ostore_striped_store_test.dir/ostore/striped_store_test.cc.o"
  "CMakeFiles/ostore_striped_store_test.dir/ostore/striped_store_test.cc.o.d"
  "ostore_striped_store_test"
  "ostore_striped_store_test.pdb"
  "ostore_striped_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostore_striped_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
