file(REMOVE_RECURSE
  "CMakeFiles/common_flat_hash_map_test.dir/common/flat_hash_map_test.cc.o"
  "CMakeFiles/common_flat_hash_map_test.dir/common/flat_hash_map_test.cc.o.d"
  "common_flat_hash_map_test"
  "common_flat_hash_map_test.pdb"
  "common_flat_hash_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_flat_hash_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
