file(REMOVE_RECURSE
  "CMakeFiles/kv_shard_test.dir/kv/shard_test.cc.o"
  "CMakeFiles/kv_shard_test.dir/kv/shard_test.cc.o.d"
  "kv_shard_test"
  "kv_shard_test.pdb"
  "kv_shard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
