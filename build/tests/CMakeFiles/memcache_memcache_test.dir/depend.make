# Empty dependencies file for memcache_memcache_test.
# This may be replaced when dependencies are built.
