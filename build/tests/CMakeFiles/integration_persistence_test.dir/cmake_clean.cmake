file(REMOVE_RECURSE
  "CMakeFiles/integration_persistence_test.dir/integration/persistence_test.cc.o"
  "CMakeFiles/integration_persistence_test.dir/integration/persistence_test.cc.o.d"
  "integration_persistence_test"
  "integration_persistence_test.pdb"
  "integration_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
