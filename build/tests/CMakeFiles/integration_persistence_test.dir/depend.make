# Empty dependencies file for integration_persistence_test.
# This may be replaced when dependencies are built.
