file(REMOVE_RECURSE
  "CMakeFiles/dlt_pipeline_test.dir/dlt/pipeline_test.cc.o"
  "CMakeFiles/dlt_pipeline_test.dir/dlt/pipeline_test.cc.o.d"
  "dlt_pipeline_test"
  "dlt_pipeline_test.pdb"
  "dlt_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
