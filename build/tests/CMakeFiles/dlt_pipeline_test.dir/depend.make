# Empty dependencies file for dlt_pipeline_test.
# This may be replaced when dependencies are built.
