# Empty dependencies file for fusefs_fusefs_test.
# This may be replaced when dependencies are built.
