file(REMOVE_RECURSE
  "CMakeFiles/fusefs_fusefs_test.dir/fusefs/fusefs_test.cc.o"
  "CMakeFiles/fusefs_fusefs_test.dir/fusefs/fusefs_test.cc.o.d"
  "fusefs_fusefs_test"
  "fusefs_fusefs_test.pdb"
  "fusefs_fusefs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusefs_fusefs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
