file(REMOVE_RECURSE
  "CMakeFiles/integration_recovery_equivalence_test.dir/integration/recovery_equivalence_test.cc.o"
  "CMakeFiles/integration_recovery_equivalence_test.dir/integration/recovery_equivalence_test.cc.o.d"
  "integration_recovery_equivalence_test"
  "integration_recovery_equivalence_test.pdb"
  "integration_recovery_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_recovery_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
