file(REMOVE_RECURSE
  "CMakeFiles/ostore_tiered_store_test.dir/ostore/tiered_store_test.cc.o"
  "CMakeFiles/ostore_tiered_store_test.dir/ostore/tiered_store_test.cc.o.d"
  "ostore_tiered_store_test"
  "ostore_tiered_store_test.pdb"
  "ostore_tiered_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostore_tiered_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
