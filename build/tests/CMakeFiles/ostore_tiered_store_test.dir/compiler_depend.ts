# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ostore_tiered_store_test.
