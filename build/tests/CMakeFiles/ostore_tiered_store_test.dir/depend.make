# Empty dependencies file for ostore_tiered_store_test.
# This may be replaced when dependencies are built.
