file(REMOVE_RECURSE
  "CMakeFiles/dlt_distributed_task_test.dir/dlt/distributed_task_test.cc.o"
  "CMakeFiles/dlt_distributed_task_test.dir/dlt/distributed_task_test.cc.o.d"
  "dlt_distributed_task_test"
  "dlt_distributed_task_test.pdb"
  "dlt_distributed_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlt_distributed_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
