# Empty dependencies file for dlt_distributed_task_test.
# This may be replaced when dependencies are built.
