# Empty dependencies file for common_base64lex_test.
# This may be replaced when dependencies are built.
