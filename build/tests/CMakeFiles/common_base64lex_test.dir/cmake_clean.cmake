file(REMOVE_RECURSE
  "CMakeFiles/common_base64lex_test.dir/common/base64lex_test.cc.o"
  "CMakeFiles/common_base64lex_test.dir/common/base64lex_test.cc.o.d"
  "common_base64lex_test"
  "common_base64lex_test.pdb"
  "common_base64lex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_base64lex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
