file(REMOVE_RECURSE
  "CMakeFiles/etcd_discovery_test.dir/etcd/discovery_test.cc.o"
  "CMakeFiles/etcd_discovery_test.dir/etcd/discovery_test.cc.o.d"
  "etcd_discovery_test"
  "etcd_discovery_test.pdb"
  "etcd_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etcd_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
