# Empty dependencies file for etcd_discovery_test.
# This may be replaced when dependencies are built.
