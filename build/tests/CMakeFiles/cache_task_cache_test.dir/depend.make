# Empty dependencies file for cache_task_cache_test.
# This may be replaced when dependencies are built.
