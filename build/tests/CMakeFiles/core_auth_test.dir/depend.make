# Empty dependencies file for core_auth_test.
# This may be replaced when dependencies are built.
