file(REMOVE_RECURSE
  "CMakeFiles/core_auth_test.dir/core/auth_test.cc.o"
  "CMakeFiles/core_auth_test.dir/core/auth_test.cc.o.d"
  "core_auth_test"
  "core_auth_test.pdb"
  "core_auth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
