file(REMOVE_RECURSE
  "CMakeFiles/cache_registry_test.dir/cache/registry_test.cc.o"
  "CMakeFiles/cache_registry_test.dir/cache/registry_test.cc.o.d"
  "cache_registry_test"
  "cache_registry_test.pdb"
  "cache_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
