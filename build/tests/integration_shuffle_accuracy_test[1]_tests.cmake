add_test([=[ShuffleAccuracyTest.ChunkWiseMatchesDatasetShuffle]=]  /root/repo/build/tests/integration_shuffle_accuracy_test [==[--gtest_filter=ShuffleAccuracyTest.ChunkWiseMatchesDatasetShuffle]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ShuffleAccuracyTest.ChunkWiseMatchesDatasetShuffle]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_shuffle_accuracy_test_TESTS ShuffleAccuracyTest.ChunkWiseMatchesDatasetShuffle)
