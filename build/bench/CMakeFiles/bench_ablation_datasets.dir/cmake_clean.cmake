file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_datasets.dir/bench_ablation_datasets.cc.o"
  "CMakeFiles/bench_ablation_datasets.dir/bench_ablation_datasets.cc.o.d"
  "bench_ablation_datasets"
  "bench_ablation_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
