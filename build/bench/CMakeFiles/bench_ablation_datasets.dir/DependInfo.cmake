
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_datasets.cc" "bench/CMakeFiles/bench_ablation_datasets.dir/bench_ablation_datasets.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_datasets.dir/bench_ablation_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dlt/CMakeFiles/diesel_dlt.dir/DependInfo.cmake"
  "/root/repo/build/src/fusefs/CMakeFiles/diesel_fusefs.dir/DependInfo.cmake"
  "/root/repo/build/src/shuffle/CMakeFiles/diesel_shuffle.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/diesel_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/diesel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/diesel_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/ostore/CMakeFiles/diesel_ostore.dir/DependInfo.cmake"
  "/root/repo/build/src/memcache/CMakeFiles/diesel_memcache.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/diesel_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/diesel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diesel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diesel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/etcd/CMakeFiles/diesel_etcd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
