# Empty dependencies file for bench_ablation_datasets.
# This may be replaced when dependencies are built.
