# Empty compiler generated dependencies file for bench_fig11a_read4k.
# This may be replaced when dependencies are built.
