file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_read4k.dir/bench_fig11a_read4k.cc.o"
  "CMakeFiles/bench_fig11a_read4k.dir/bench_fig11a_read4k.cc.o.d"
  "bench_fig11a_read4k"
  "bench_fig11a_read4k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_read4k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
