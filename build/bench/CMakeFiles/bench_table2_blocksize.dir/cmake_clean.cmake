file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_blocksize.dir/bench_table2_blocksize.cc.o"
  "CMakeFiles/bench_table2_blocksize.dir/bench_table2_blocksize.cc.o.d"
  "bench_table2_blocksize"
  "bench_table2_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
