# Empty dependencies file for bench_table2_blocksize.
# This may be replaced when dependencies are built.
