file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_access_time.dir/bench_fig14_access_time.cc.o"
  "CMakeFiles/bench_fig14_access_time.dir/bench_fig14_access_time.cc.o.d"
  "bench_fig14_access_time"
  "bench_fig14_access_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
