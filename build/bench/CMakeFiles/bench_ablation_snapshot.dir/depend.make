# Empty dependencies file for bench_ablation_snapshot.
# This may be replaced when dependencies are built.
