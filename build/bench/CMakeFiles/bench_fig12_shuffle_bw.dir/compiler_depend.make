# Empty compiler generated dependencies file for bench_fig12_shuffle_bw.
# This may be replaced when dependencies are built.
