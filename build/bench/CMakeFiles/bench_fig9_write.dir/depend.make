# Empty dependencies file for bench_fig9_write.
# This may be replaced when dependencies are built.
