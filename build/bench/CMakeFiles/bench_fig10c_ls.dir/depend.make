# Empty dependencies file for bench_fig10c_ls.
# This may be replaced when dependencies are built.
