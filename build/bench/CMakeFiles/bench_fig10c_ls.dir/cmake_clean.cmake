file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_ls.dir/bench_fig10c_ls.cc.o"
  "CMakeFiles/bench_fig10c_ls.dir/bench_fig10c_ls.cc.o.d"
  "bench_fig10c_ls"
  "bench_fig10c_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
