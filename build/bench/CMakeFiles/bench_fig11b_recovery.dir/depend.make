# Empty dependencies file for bench_fig11b_recovery.
# This may be replaced when dependencies are built.
