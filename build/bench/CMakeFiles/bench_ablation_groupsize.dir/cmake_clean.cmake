file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_groupsize.dir/bench_ablation_groupsize.cc.o"
  "CMakeFiles/bench_ablation_groupsize.dir/bench_ablation_groupsize.cc.o.d"
  "bench_ablation_groupsize"
  "bench_ablation_groupsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_groupsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
