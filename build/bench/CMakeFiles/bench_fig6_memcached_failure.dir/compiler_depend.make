# Empty compiler generated dependencies file for bench_fig6_memcached_failure.
# This may be replaced when dependencies are built.
