# Empty compiler generated dependencies file for bench_fig10a_metadata_servers.
# This may be replaced when dependencies are built.
