file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_metadata_servers.dir/bench_fig10a_metadata_servers.cc.o"
  "CMakeFiles/bench_fig10a_metadata_servers.dir/bench_fig10a_metadata_servers.cc.o.d"
  "bench_fig10a_metadata_servers"
  "bench_fig10a_metadata_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_metadata_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
