file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_executor.dir/bench_ablation_executor.cc.o"
  "CMakeFiles/bench_ablation_executor.dir/bench_ablation_executor.cc.o.d"
  "bench_ablation_executor"
  "bench_ablation_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
