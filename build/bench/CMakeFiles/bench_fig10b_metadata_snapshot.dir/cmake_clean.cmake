file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_metadata_snapshot.dir/bench_fig10b_metadata_snapshot.cc.o"
  "CMakeFiles/bench_fig10b_metadata_snapshot.dir/bench_fig10b_metadata_snapshot.cc.o.d"
  "bench_fig10b_metadata_snapshot"
  "bench_fig10b_metadata_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_metadata_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
