# Empty dependencies file for bench_fig10b_metadata_snapshot.
# This may be replaced when dependencies are built.
