file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_containment.dir/bench_ablation_containment.cc.o"
  "CMakeFiles/bench_ablation_containment.dir/bench_ablation_containment.cc.o.d"
  "bench_ablation_containment"
  "bench_ablation_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
