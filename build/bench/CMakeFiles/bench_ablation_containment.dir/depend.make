# Empty dependencies file for bench_ablation_containment.
# This may be replaced when dependencies are built.
